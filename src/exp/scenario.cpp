#include "exp/scenario.hpp"

#include <array>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <thread>

#include "fault/fault_engine.hpp"
#include "obs/analysis/attribution.hpp"
#include "obs/analysis/dataset.hpp"
#include "obs/sampler.hpp"
#include "obs/sinks.hpp"
#include "perf/profiler.hpp"
#include "perf/report.hpp"
#include "sim/simulator.hpp"
#include "sweep/thread_pool.hpp"
#include "tenant/fair_queue.hpp"
#include "tenant/mqfq_scheduler.hpp"

namespace esg::exp {

std::string_view to_string(ArrivalMode mode) {
  switch (mode) {
    case ArrivalMode::kSynthetic:
      return "synthetic";
    case ArrivalMode::kBursty:
      return "bursty";
    case ArrivalMode::kTrace:
      return "trace";
  }
  throw std::invalid_argument("to_string: bad ArrivalMode");
}

std::string_view to_string(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kEsg:
      return "ESG";
    case SchedulerKind::kInfless:
      return "INFless";
    case SchedulerKind::kFastGshare:
      return "FaST-GShare";
    case SchedulerKind::kOrion:
      return "Orion";
    case SchedulerKind::kAquatope:
      return "Aquatope";
    case SchedulerKind::kMqfqSticky:
      return "MQFQ-Sticky";
  }
  throw std::invalid_argument("to_string: bad SchedulerKind");
}

std::span<const SchedulerKind> all_schedulers() {
  static constexpr std::array<SchedulerKind, 5> kAll = {
      SchedulerKind::kEsg, SchedulerKind::kInfless, SchedulerKind::kFastGshare,
      SchedulerKind::kOrion, SchedulerKind::kAquatope};
  return kAll;
}

std::span<const SettingCombo> paper_combos() {
  static constexpr std::array<SettingCombo, 3> kCombos = {{
      {workload::SloSetting::kStrict, workload::LoadSetting::kLight},
      {workload::SloSetting::kModerate, workload::LoadSetting::kNormal},
      {workload::SloSetting::kRelaxed, workload::LoadSetting::kHeavy},
  }};
  return kCombos;
}

std::string combo_name(const SettingCombo& combo) {
  return std::string(workload::to_string(combo.slo)) + "-" +
         std::string(workload::to_string(combo.load));
}

namespace {

std::unique_ptr<platform::Scheduler> make_scheduler(
    const Scenario& scenario, const std::vector<workload::AppDag>& apps,
    const profile::ProfileSet& profiles, const RngFactory& rng,
    const tenant::FairQueue* fair_queue) {
  switch (scenario.scheduler) {
    case SchedulerKind::kEsg:
      return std::make_unique<core::EsgScheduler>(apps, profiles, scenario.esg);
    case SchedulerKind::kInfless:
      return std::make_unique<baselines::InflessScheduler>(apps, profiles,
                                                           scenario.infless);
    case SchedulerKind::kFastGshare:
      return std::make_unique<baselines::FastGshareScheduler>(
          apps, profiles, scenario.fast_gshare);
    case SchedulerKind::kOrion:
      return std::make_unique<baselines::OrionScheduler>(apps, profiles,
                                                         scenario.orion);
    case SchedulerKind::kAquatope:
      return std::make_unique<baselines::AquatopeScheduler>(
          apps, profiles, scenario.slo, rng, scenario.aquatope);
    case SchedulerKind::kMqfqSticky:
      // run_scenario always builds a FairQueue for this kind, even on an
      // otherwise inert tenant spec (one flow owning the whole ring).
      return std::make_unique<tenant::MqfqStickyScheduler>(
          apps, profiles, scenario.esg, fair_queue);
  }
  throw std::invalid_argument("make_scheduler: bad SchedulerKind");
}

}  // namespace

std::unique_ptr<workload::ArrivalSource> make_arrival_source(
    const Scenario& scenario, std::vector<AppId> apps, const RngFactory& rng) {
  switch (scenario.arrivals.mode) {
    case ArrivalMode::kSynthetic:
      return std::make_unique<workload::ArrivalGenerator>(
          scenario.load, std::move(apps), rng.stream("arrivals"));
    case ArrivalMode::kBursty:
      return std::make_unique<workload::BurstyArrivalGenerator>(
          scenario.arrivals.burst, std::move(apps), rng.stream("arrivals"));
    case ArrivalMode::kTrace: {
      std::shared_ptr<const trace::WorkloadTrace> t = scenario.arrivals.trace;
      if (t == nullptr) {
        if (scenario.arrivals.trace_path.empty()) {
          throw std::invalid_argument(
              "make_arrival_source: trace mode needs a trace or trace_path");
        }
        t = std::make_shared<const trace::WorkloadTrace>(
            trace::load_workload_trace(scenario.arrivals.trace_path));
      }
      return std::make_unique<trace::TraceArrivalGenerator>(
          std::move(t), std::move(apps), scenario.arrivals.replay,
          rng.scoped("trace").stream("replay"));
    }
  }
  throw std::invalid_argument("make_arrival_source: bad ArrivalMode");
}

RunOutput run_scenario(const Scenario& scenario) {
  if (!scenario.trace.enabled()) return run_scenario(scenario, nullptr);

  // Each perf report covers exactly one run: clear this thread's scope tree
  // (a no-op in ESG_PROFILE=OFF builds, where it is always empty).
  if (!scenario.trace.perf_path.empty()) perf::Profiler::instance().reset();

  obs::TraceRecorder recorder;
  if (!scenario.trace.trace_path.empty()) {
    auto file = std::make_unique<std::ofstream>(scenario.trace.trace_path);
    if (!*file) {
      throw std::runtime_error("run_scenario: cannot open trace file '" +
                               scenario.trace.trace_path + "'");
    }
    recorder.add_sink(std::make_unique<obs::ChromeTraceSink>(std::move(file)));
  }
  if (!scenario.trace.stats_path.empty()) {
    auto file = std::make_unique<std::ofstream>(scenario.trace.stats_path);
    if (!*file) {
      throw std::runtime_error("run_scenario: cannot open stats file '" +
                               scenario.trace.stats_path + "'");
    }
    recorder.add_sink(std::make_unique<obs::JsonlStatsSink>(std::move(file)));
  }
  obs::analysis::AnalysisSink* analysis = nullptr;
  if (!scenario.trace.report_path.empty()) {
    auto sink = std::make_unique<obs::analysis::AnalysisSink>();
    analysis = sink.get();
    recorder.add_sink(std::move(sink));
  }
  RunOutput out = run_scenario(scenario, &recorder);
  if (!scenario.trace.perf_path.empty()) {
    std::FILE* file = std::fopen(scenario.trace.perf_path.c_str(), "w");
    if (file == nullptr) {
      throw std::runtime_error("run_scenario: cannot open perf file '" +
                               scenario.trace.perf_path + "'");
    }
    perf::RunInfo info;
    info.scheduler = to_string(scenario.scheduler);
    info.seed = scenario.seed;
    info.simulated_ms = out.simulated_end_ms;
    info.wall_seconds = out.wall_seconds;
    info.invocations = out.metrics.requests();
    perf::write_perf_json(file, info, out.counters,
                          perf::Profiler::instance().snapshot());
    std::fclose(file);
  }
  if (analysis != nullptr) {
    std::ofstream file(scenario.trace.report_path);
    if (!file) {
      throw std::runtime_error("run_scenario: cannot open report file '" +
                               scenario.trace.report_path + "'");
    }
    const obs::analysis::AttributionReport report =
        obs::analysis::build_report(analysis->dataset());
    obs::analysis::write_report_json(report, file);
  }
  return out;
}

RunOutput run_scenario(const Scenario& scenario_in,
                       obs::TraceRecorder* recorder) {
  const auto wall_start = std::chrono::steady_clock::now();

  // Local copy so the trace can be loaded eagerly: the tenant resolution
  // below needs the trace's tenant count before the arrival source exists.
  Scenario scenario = scenario_in;
  if (scenario.arrivals.mode == ArrivalMode::kTrace &&
      scenario.arrivals.trace == nullptr &&
      !scenario.arrivals.trace_path.empty()) {
    scenario.arrivals.trace = std::make_shared<const trace::WorkloadTrace>(
        trace::load_workload_trace(scenario.arrivals.trace_path));
  }

  const RngFactory rng(scenario.seed);
  const profile::ProfileSet profiles =
      profile::ProfileSet::builtin(scenario.config_space);
  const std::vector<workload::AppDag> apps = workload::builtin_applications();

  // An elastic scenario builds the cluster at max size; nodes beyond the
  // initial fleet start retired and are acquired by the policy on demand.
  elastic::ElasticSpec elastic_spec = scenario.elastic;
  if (elastic_spec.enabled()) {
    if (elastic_spec.max_nodes == 0) elastic_spec.max_nodes = scenario.nodes;
    if (elastic_spec.min_nodes > elastic_spec.max_nodes) {
      throw std::invalid_argument(
          "run_scenario: elastic min exceeds the resolved max fleet size");
    }
    if (scenario.nodes < 1 || scenario.nodes > elastic_spec.max_nodes) {
      throw std::invalid_argument(
          "run_scenario: --nodes (the initial fleet) must be in [1, elastic "
          "max]");
    }
  }
  const std::size_t cluster_nodes =
      elastic_spec.enabled() ? elastic_spec.max_nodes : scenario.nodes;

  // Multi-tenant fair queueing: resolve the spec against the trace's tenant
  // column, then build the shared FairQueue when tenancy can change any
  // decision. Inert spec + paper scheduler leaves fair_queue null, so the
  // controller runs the exact single-tenant code path.
  const std::size_t trace_tenants = scenario.arrivals.trace != nullptr
                                        ? scenario.arrivals.trace->tenant_count
                                        : 1;
  const tenant::TenantSpec tenant_spec =
      tenant::resolve_for_trace(scenario.tenants, trace_tenants);
  for (const auto& def : tenant_spec.tenants) {
    for (const std::uint32_t claimed : def.apps) {
      if (claimed >= apps.size()) {
        throw std::invalid_argument(
            "run_scenario: tenant '" + def.name + "' claims app " +
            std::to_string(claimed) + " but the workload has only " +
            std::to_string(apps.size()) + " apps");
      }
    }
  }
  const bool mqfq = scenario.scheduler == SchedulerKind::kMqfqSticky;
  std::unique_ptr<tenant::FairQueue> fair_queue;
  if (!tenant_spec.inert() || mqfq) {
    fair_queue =
        std::make_unique<tenant::FairQueue>(tenant_spec, cluster_nodes, mqfq);
  }

  sim::Simulator sim(scenario.engine);
  cluster::Cluster cluster(cluster_nodes);
  const auto scheduler =
      make_scheduler(scenario, apps, profiles, rng, fair_queue.get());

  const bool tracing = recorder != nullptr && recorder->is_enabled();
  if (tracing) {
    cluster.set_warm_span_callback([recorder](InvokerId inv, FunctionId fn,
                                              TimeMs since, TimeMs end,
                                              cluster::WarmEnd reason) {
      if (end <= since) return;
      const char* state = reason == cluster::WarmEnd::kAcquired ? "acquired"
                          : reason == cluster::WarmEnd::kExpired ? "expired"
                          : reason == cluster::WarmEnd::kCrashed ? "crashed"
                          : reason == cluster::WarmEnd::kDrained ? "drained"
                                                                 : "open";
      recorder->span(obs::SpanKind::kKeepAlive,
                     "warm f" + std::to_string(fn.get()),
                     obs::invoker_track(inv, obs::kWarmPoolLane), since, end,
                     {{"function", std::to_string(fn.get())},
                      {"end", state}});
    });
  }

  // Fault injection: an inert spec creates no engine at all, so the
  // controller runs the exact fault-free code path (byte-identical outputs).
  // The engine draws from a factory scoped off the master seed, never from
  // the base streams, so arrivals and noise are unperturbed by faults.
  std::unique_ptr<fault::FaultEngine> fault_engine;
  if (!scenario.fault.inert()) {
    for (const auto& crash : scenario.fault.crashes) {
      if (crash.invoker.get() >= cluster_nodes) {
        throw std::invalid_argument(
            "run_scenario: fault-spec crash invoker out of range");
      }
    }
    for (const auto& slow : scenario.fault.slowdowns) {
      if (slow.invoker.get() >= cluster_nodes) {
        throw std::invalid_argument(
            "run_scenario: fault-spec slow invoker out of range");
      }
    }
    if (!scenario.fault.spot.empty() && !elastic_spec.enabled()) {
      throw std::invalid_argument(
          "run_scenario: spot: clauses need --elastic (a static fleet has no "
          "lifecycle to reclaim)");
    }
    fault_engine = std::make_unique<fault::FaultEngine>(scenario.fault,
                                                        rng.scoped("fault"));
  }

  // The manager retires the beyond-initial nodes before the controller seeds
  // warm pools, so construction order matters here.
  std::unique_ptr<elastic::ElasticManager> elastic_manager;
  if (elastic_spec.enabled()) {
    elastic_manager = std::make_unique<elastic::ElasticManager>(
        sim, cluster, elastic_spec, rng.scoped("elastic"), scenario.nodes);
  }

  // Arrival forecasting: an inert spec builds no service at all, so the
  // run takes the exact reactive code path (byte-identical outputs). The
  // service is draw-free — enabling it perturbs no RNG substream.
  std::unique_ptr<forecast::ForecastService> forecast_service;
  if (scenario.forecast.enabled()) {
    forecast_service = std::make_unique<forecast::ForecastService>(
        scenario.forecast, apps.size(), scenario.arrivals.trace,
        scenario.arrivals.replay);
    if (tracing) forecast_service->set_trace(recorder);
    if (elastic_manager != nullptr &&
        elastic_spec.policy == elastic::ElasticPolicy::kForecast) {
      elastic_manager->set_forecast_provider(
          [svc = forecast_service.get(),
           provision = elastic_spec.provision_ms](TimeMs now) {
            return svc->predicted_total_rate(now, provision);
          });
    }
  }
  if (elastic_spec.policy == elastic::ElasticPolicy::kForecast &&
      forecast_service == nullptr) {
    throw std::invalid_argument(
        "run_scenario: --elastic forecast needs --forecast (the policy has "
        "no signal without a forecaster)");
  }

  platform::ControllerOptions controller_options = scenario.controller;
  controller_options.metrics_warmup_ms = scenario.warmup_ms;
  controller_options.recorder = recorder;
  controller_options.fault = fault_engine.get();
  controller_options.elastic = elastic_manager.get();
  controller_options.forecast = forecast_service.get();
  controller_options.fair_queue = fair_queue.get();
  platform::Controller controller(sim, cluster, profiles, apps, scenario.slo,
                                  *scheduler, rng, controller_options);

  obs::TraceRecorder disabled_recorder;  // sampler needs a reference
  obs::StatsSampler sampler(sim, cluster,
                            tracing ? *recorder : disabled_recorder,
                            scenario.trace.stats_interval_ms);
  if (tracing) {
    sampler.set_queue_depth_provider(
        [&controller] { return controller.total_queued_jobs(); });
    // Per-tenant fairness gauges, absent on single-tenant runs so the stats
    // JSONL stays byte-identical to pre-tenant builds.
    if (fair_queue != nullptr) {
      const tenant::FairQueue* fq = fair_queue.get();
      for (std::uint32_t t = 0; t < fq->tenant_count(); ++t) {
        const std::string name = fq->spec().tenant_name(t);
        sampler.add_gauge("tenant_vt/" + name,
                          [fq, t] { return fq->virtual_time(t); });
        sampler.add_gauge("tenant_backlog/" + name, [fq, t] {
          return static_cast<double>(fq->backlog(t));
        });
        sampler.add_gauge("tenant_throttled/" + name, [fq, t] {
          return static_cast<double>(fq->throttle_events(t));
        });
      }
    }
    // Per-app forecast gauges, absent on reactive runs so the stats JSONL
    // stays byte-identical to pre-forecast builds.
    if (forecast_service != nullptr) {
      forecast::ForecastService* svc = forecast_service.get();
      for (std::uint32_t a = 0; a < svc->app_count(); ++a) {
        const std::string app = "app" + std::to_string(a);
        sampler.add_gauge("forecast/predicted/" + app, [svc, a] {
          return svc->current_prediction(a);
        });
        sampler.add_gauge("forecast/mae/" + app,
                          [svc, a] { return svc->accuracy(a).mae; });
        sampler.add_gauge("forecast/smape/" + app,
                          [svc, a] { return svc->accuracy(a).smape; });
      }
    }
    // Self-profiling counter tracks, only on perf-enabled runs so existing
    // stats/trace artefacts stay byte-identical (DESIGN.md §13). Each gauge
    // samples the merged view across the event loop, controller (incl.
    // prewarm), fair queue, and forecaster.
    if (!scenario.trace.perf_path.empty()) {
      const sim::Simulator* sim_ptr = &sim;
      const platform::Controller* ctl = &controller;
      const tenant::FairQueue* fq = fair_queue.get();
      const forecast::ForecastService* fc = forecast_service.get();
      for (const perf::CounterField& field : perf::kCounterFields) {
        sampler.add_gauge(
            std::string(perf::kGaugePrefix) + field.name,
            [sim_ptr, ctl, fq, fc, member = field.member] {
              perf::Counters merged = sim_ptr->counters();
              merged.merge(ctl->perf_counters());
              if (fq != nullptr) merged.merge(fq->counters());
              if (fc != nullptr) merged.merge(fc->counters());
              return static_cast<double>(merged.*member);
            });
      }
    }
    sampler.start();
  }

  std::vector<AppId> app_ids;
  app_ids.reserve(apps.size());
  for (const auto& app : apps) app_ids.push_back(app.id());
  const auto source = make_arrival_source(scenario, std::move(app_ids), rng);
  controller.inject(source->generate_until(scenario.horizon_ms));
  bool truncated = false;
  if (scenario.wall_budget_ms <= 0.0) {
    controller.run_to_completion();
  } else {
    // Budgeted run (bench rows): fire events until the wall-clock budget is
    // spent. The clock check is batched per 1024 events so the steady-state
    // loop stays as hot as run_to_completion.
    const auto deadline =
        wall_start +
        std::chrono::duration<double, std::milli>(scenario.wall_budget_ms);
    std::uint64_t fired = 0;
    while (sim.step()) {
      if ((++fired & 0x3FFu) == 0 &&
          std::chrono::steady_clock::now() >= deadline) {
        break;
      }
    }
    truncated = !sim.empty();
  }

  if (tracing) {
    cluster.flush_warm_spans(sim.now());
    recorder->flush();
  }

  RunOutput out;
  out.metrics = controller.metrics();
  out.simulated_end_ms = sim.now();
  out.wall_seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - wall_start)
                         .count();
  out.counters = sim.counters();
  out.counters.merge(controller.perf_counters());
  if (fair_queue != nullptr) out.counters.merge(fair_queue->counters());
  if (forecast_service != nullptr) {
    out.counters.merge(forecast_service->counters());
    out.forecast_accuracy.reserve(apps.size());
    for (std::uint32_t a = 0; a < apps.size(); ++a) {
      out.forecast_accuracy.push_back(forecast_service->accuracy(a));
    }
  }
  out.truncated = truncated;
  return out;
}

std::vector<RunOutput> run_replicas(const Scenario& base,
                                    std::span<const std::uint64_t> seeds,
                                    unsigned max_threads) {
  std::vector<RunOutput> outputs(seeds.size());
  if (seeds.empty()) return outputs;
  if (max_threads == 0) {
    max_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  // Each replica writes only its own slot, so the merged outputs are ordered
  // like `seeds` (and byte-identical) for any worker count.
  sweep::ThreadPool pool(
      static_cast<unsigned>(std::min<std::size_t>(max_threads, seeds.size())));
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    pool.submit([&base, &seeds, &outputs, i] {
      Scenario scenario = base;
      scenario.seed = seeds[i];
      scenario.trace = TraceConfig{};  // replicas would race on the files
      outputs[i] = run_scenario(scenario);
    });
  }
  pool.wait_idle();
  return outputs;
}

Aggregate aggregate(std::span<const RunOutput> outputs) {
  Aggregate agg;
  if (outputs.empty()) return agg;
  double uses = 0.0;
  double misses = 0.0;
  double wait_sum = 0.0;
  std::size_t wait_count = 0;
  for (const auto& out : outputs) {
    agg.slo_hit_rate += out.metrics.slo_hit_rate();
    agg.total_cost += out.metrics.total_cost;
    agg.requests += out.metrics.requests();
    uses += static_cast<double>(out.metrics.plan_uses);
    misses += static_cast<double>(out.metrics.plan_misses);
    for (double w : out.metrics.job_wait_ms) {
      wait_sum += w;
      ++wait_count;
    }
  }
  const auto n = static_cast<double>(outputs.size());
  agg.slo_hit_rate /= n;
  agg.total_cost /= n;
  agg.config_miss_rate = uses > 0.0 ? misses / uses : 0.0;
  agg.mean_job_wait_ms = wait_count > 0 ? wait_sum / wait_count : 0.0;
  return agg;
}

}  // namespace esg::exp
