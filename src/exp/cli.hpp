// Command-line front end for the experiment harness: parses `--key value`
// style flags into a Scenario, so arbitrary runs can be driven without
// writing C++ (used by tools/esg_sim).
#pragma once

#include <optional>
#include <span>
#include <string>

#include "exp/scenario.hpp"

namespace esg::exp {

struct CliOptions {
  Scenario scenario;
  std::vector<std::uint64_t> seeds{42};
  /// Directory to write completions/tasks/summary CSVs into (empty = none).
  std::string csv_dir;
  /// --sweep: run the (scheduler × seed) cross product on the work-stealing
  /// pool instead of the single-scheduler replica path.
  bool sweep = false;
  /// --jobs: worker threads for --sweep and the multi-seed replica runner
  /// (0 = hardware concurrency). Results are byte-identical for any value.
  unsigned jobs = 0;
  /// --sweep-out: deterministic sweep-result JSON path (empty = none).
  std::string sweep_out;
  /// Schedulers named by --scheduler. A comma list is only valid with
  /// --sweep; front() always mirrors scenario.scheduler.
  std::vector<SchedulerKind> schedulers{SchedulerKind::kEsg};
  bool help = false;
  /// Print the per-seed self-profiling summary (counters + scope tree) after
  /// each run. Forces sequential seed execution like the traced path.
  bool perf_summary = false;
  /// --version / --build-info: print provenance and exit 0.
  bool version = false;
  bool build_info = false;
};

/// Parses argv (excluding argv[0]). Throws std::invalid_argument with a
/// descriptive message on unknown flags or malformed values.
[[nodiscard]] CliOptions parse_cli(std::span<const char* const> args);

/// The --help text.
[[nodiscard]] std::string cli_usage();

}  // namespace esg::exp
