// Experiment scenarios: a scheduler + workload + SLO combination with all
// knobs, and a runner that executes it on a fresh simulated cluster. The
// bench binaries (one per paper table/figure) are thin loops over these.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "baselines/aquatope.hpp"
#include "baselines/fast_gshare.hpp"
#include "baselines/infless.hpp"
#include "baselines/orion.hpp"
#include "core/esg_scheduler.hpp"
#include "elastic/elastic_spec.hpp"
#include "fault/fault_spec.hpp"
#include "forecast/forecaster.hpp"
#include "metrics/run_metrics.hpp"
#include "perf/counters.hpp"
#include "platform/controller.hpp"
#include "profile/profile_table.hpp"
#include "sim/simulator.hpp"
#include "tenant/tenant_spec.hpp"
#include "trace/replay.hpp"
#include "workload/applications.hpp"
#include "workload/arrival_source.hpp"
#include "workload/arrivals.hpp"
#include "workload/bursty_arrivals.hpp"

namespace esg::exp {

/// The paper's five compared schedulers plus MQFQ-Sticky, the multi-tenant
/// fair-queueing strategy (ESG planning + sticky per-flow placement +
/// virtual-time dispatch order with throttling; DESIGN.md §12). kMqfqSticky
/// is deliberately NOT in all_schedulers(): the figure benches sweep the
/// paper's five-way comparison unchanged.
enum class SchedulerKind {
  kEsg,
  kInfless,
  kFastGshare,
  kOrion,
  kAquatope,
  kMqfqSticky,
};

/// Which arrival process drives the run (--arrivals).
enum class ArrivalMode {
  kSynthetic,  ///< paper Section 4.1 uniform ranges per --load
  kBursty,     ///< calm/burst phase switching (BurstyArrivalGenerator)
  kTrace,      ///< production-trace replay (src/trace)
};

[[nodiscard]] std::string_view to_string(ArrivalMode mode);

struct ArrivalConfig {
  ArrivalMode mode = ArrivalMode::kSynthetic;
  /// kBursty: phase profile (load settings + mean phase lengths).
  workload::BurstProfile burst;
  /// kTrace: source file (for display / lazy loading) and replay knobs.
  std::string trace_path;
  trace::ReplayOptions replay;
  /// kTrace: the parsed trace. parse_cli loads it eagerly (fail fast, and
  /// replicas share one parse); run_scenario loads from trace_path when the
  /// pointer is null so programmatic callers can set just the path.
  std::shared_ptr<const trace::WorkloadTrace> trace;
};

/// File-backed tracing knobs (the CLI's --trace-out / --stats-out /
/// --stats-interval-ms). Empty paths leave tracing off; tests and benches
/// that want in-memory traces pass their own recorder to run_scenario
/// instead.
struct TraceConfig {
  std::string trace_path;   ///< Chrome-trace-event JSON (Perfetto-loadable)
  std::string stats_path;   ///< counter time series as JSON Lines
  std::string report_path;  ///< SLO-attribution report JSON (--report-out)
  std::string perf_path;    ///< esg.perf.v1 self-profiling JSON (--perf-out)
  TimeMs stats_interval_ms = 100.0;

  [[nodiscard]] bool enabled() const {
    return !trace_path.empty() || !stats_path.empty() ||
           !report_path.empty() || !perf_path.empty();
  }
};

[[nodiscard]] std::string_view to_string(SchedulerKind kind);

/// The five schedulers compared in the paper's evaluation, ESG first.
[[nodiscard]] std::span<const SchedulerKind> all_schedulers();

struct Scenario {
  SchedulerKind scheduler = SchedulerKind::kEsg;
  workload::LoadSetting load = workload::LoadSetting::kLight;
  workload::SloSetting slo = workload::SloSetting::kStrict;
  /// Arrival process; the default (synthetic) reproduces the paper's
  /// per-`load` uniform inter-arrival ranges exactly.
  ArrivalConfig arrivals;

  std::size_t nodes = 16;          ///< paper testbed: 16 invokers
  TimeMs horizon_ms = 30'000.0;    ///< arrival window (requests drain after)
  /// Steady-state measurement: requests arriving before this are simulated
  /// but not measured (the initial cold-start wave affects every scheduler
  /// identically and is not what the paper's Figures 6-8 report).
  TimeMs warmup_ms = 0.0;
  std::uint64_t seed = 42;
  /// Event-queue engine backing the run's Simulator (--engine). Both engines
  /// fire in identical (when, seq) order, so every artefact is byte-identical
  /// across them (DESIGN.md §15); heap stays selectable for cross-checking.
  sim::EngineKind engine = sim::EngineKind::kCalendar;
  /// Wall-clock budget for the event loop in milliseconds (0 = unlimited).
  /// A budgeted run stops firing events once the budget is spent and sets
  /// RunOutput::truncated; the bench suite uses this to bound per-row cost
  /// (ESG_BENCH_CORE_BUDGET_MS). Metrics then cover only the fired prefix.
  double wall_budget_ms = 0.0;

  platform::ControllerOptions controller;
  TraceConfig trace;
  /// Fault injection (--fault-spec). An inert spec (the default) runs the
  /// exact fault-free code path: outputs are byte-identical to a run with no
  /// spec at all.
  fault::FaultSpec fault;
  /// Elastic fleet policy (--elastic). Disabled by default: the run uses a
  /// static fleet of `nodes` invokers. When enabled, `nodes` becomes the
  /// *initial* fleet and the cluster is built with `elastic.max_nodes`
  /// invokers (0 = resolved to `nodes`); an inert spec (min == max, no
  /// idle-out, no shedding) is byte-identical to the static run.
  elastic::ElasticSpec elastic;
  /// Arrival forecasting (--forecast). Inert by default: no ForecastService
  /// is built and the run takes the exact reactive code path — outputs are
  /// byte-identical to pre-forecast builds. When enabled, arrivals are
  /// binned per app, the named predictor estimates next-bin intensity, and
  /// three consumers act on it: proactive prewarm targets, the elastic
  /// `forecast` policy, and the ESG planner's defer look-ahead. The oracle
  /// predictor additionally requires trace arrivals.
  forecast::ForecastSpec forecast;
  /// Multi-tenant fair queueing (--tenants). An inert spec (absent or a
  /// single tenant) with any of the five paper schedulers runs the exact
  /// single-tenant code path — outputs are byte-identical to pre-tenant
  /// builds. A non-inert spec enables weighted per-tenant AFW queues and
  /// virtual-time scan order on every scheduler; SchedulerKind::kMqfqSticky
  /// additionally gates on the throttle threshold and places sticky.
  tenant::TenantSpec tenants;
  profile::ConfigSpaceOptions config_space;
  core::EsgScheduler::Options esg;
  baselines::InflessScheduler::Options infless;
  baselines::FastGshareScheduler::Options fast_gshare;
  baselines::OrionScheduler::Options orion;
  baselines::AquatopeScheduler::Options aquatope;
};

/// The paper's three headline combinations (Section 4.1): strict-light,
/// moderate-normal, relaxed-heavy.
struct SettingCombo {
  workload::SloSetting slo;
  workload::LoadSetting load;
};

[[nodiscard]] std::span<const SettingCombo> paper_combos();
[[nodiscard]] std::string combo_name(const SettingCombo& combo);

struct RunOutput {
  metrics::RunMetrics metrics;
  TimeMs simulated_end_ms = 0.0;
  double wall_seconds = 0.0;
  /// Merged hot-path counters (event loop + controller/prewarm + fair
  /// queue + forecaster). Deterministic per seed; always populated
  /// (DESIGN.md §13).
  perf::Counters counters;
  /// Per-app forecast accuracy over the run's closed bins; empty unless the
  /// scenario ran with a forecaster.
  std::vector<forecast::AppAccuracy> forecast_accuracy;
  /// True when a wall-budgeted run (Scenario::wall_budget_ms) stopped before
  /// the event queue drained. Truncated metrics cover only the fired prefix
  /// and are NOT comparable across engines or code versions.
  bool truncated = false;
};

/// Builds the arrival source a scenario asks for. Synthetic and bursty
/// sources draw from rng.stream("arrivals"); trace replay draws from the
/// rng.scoped("trace") substream, so enabling trace mode cannot perturb any
/// other stream of the run. Throws std::invalid_argument when a trace
/// scenario has no trace (and no readable trace_path), or when the trace
/// references more apps than `apps` provides.
[[nodiscard]] std::unique_ptr<workload::ArrivalSource> make_arrival_source(
    const Scenario& scenario, std::vector<AppId> apps, const RngFactory& rng);

/// Builds the platform, injects the generated arrivals, runs to completion.
/// When scenario.trace names output files, a recorder with the matching
/// sinks (plus the periodic stats sampler) is wired up for the run.
[[nodiscard]] RunOutput run_scenario(const Scenario& scenario);

/// Same, but records into the caller's recorder (nullptr = tracing off);
/// scenario.trace paths are ignored. Used by tests and the bench binaries.
[[nodiscard]] RunOutput run_scenario(const Scenario& scenario,
                                     obs::TraceRecorder* recorder);

/// Runs one scenario per seed on the work-stealing pool (src/sweep; up to
/// `max_threads` workers, 0 = hardware concurrency). Outputs are ordered
/// like `seeds` regardless of execution interleaving, so results are
/// byte-identical for any thread count. scenario.trace is ignored here —
/// replicas would race on the output files; run traced seeds sequentially
/// through run_scenario instead.
[[nodiscard]] std::vector<RunOutput> run_replicas(const Scenario& base,
                                                  std::span<const std::uint64_t> seeds,
                                                  unsigned max_threads = 0);

/// Mean SLO hit rate and total cost across replica outputs.
struct Aggregate {
  double slo_hit_rate = 0.0;
  Usd total_cost = 0.0;
  double config_miss_rate = 0.0;
  double mean_job_wait_ms = 0.0;
  std::size_t requests = 0;
};

[[nodiscard]] Aggregate aggregate(std::span<const RunOutput> outputs);

}  // namespace esg::exp
