#include "sim/simulator.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/check.hpp"
#include "perf/profiler.hpp"

namespace esg::sim {

EventHandle Simulator::schedule_in(TimeMs delay, Action action) {
  if (delay < 0.0) throw std::invalid_argument("Simulator: negative delay");
  return schedule_at(now_ + delay, std::move(action));
}

EventHandle Simulator::schedule_at(TimeMs when, Action action) {
  if (when < now_) throw std::invalid_argument("Simulator: schedule in the past");
  if (!action) throw std::invalid_argument("Simulator: empty action");
  const std::uint64_t seq = next_seq_++;
  heap_.push(Entry{when, seq, std::move(action)});
  live_.insert(seq);
  ++counters_.events_scheduled;
  ++counters_.heap_pushes;
  return EventHandle(seq);
}

void Simulator::cancel(EventHandle handle) {
  if (!handle.valid()) return;
  // A handle whose event already fired (or was never scheduled here) has no
  // heap entry; recording it would make pending() undercount forever.
  if (live_.find(handle.seq_) == live_.end()) return;
  if (is_cancelled(handle.seq_)) return;
  cancelled_seqs_.push_back(handle.seq_);
  ++cancelled_;
  ++counters_.events_cancelled;
}

bool Simulator::is_cancelled(std::uint64_t seq) const {
  return std::find(cancelled_seqs_.begin(), cancelled_seqs_.end(), seq) !=
         cancelled_seqs_.end();
}

void Simulator::forget_cancelled(std::uint64_t seq) {
  auto it = std::find(cancelled_seqs_.begin(), cancelled_seqs_.end(), seq);
  if (it != cancelled_seqs_.end()) {
    cancelled_seqs_.erase(it);
    check(cancelled_ > 0, "cancelled counter underflow");
    --cancelled_;
  }
}

bool Simulator::step() {
  ESG_PROF_SCOPE("sim/step");
  while (!heap_.empty()) {
    // priority_queue::top is const; the entry is copied cheaply except for
    // the action, which we move out via const_cast before popping — the
    // entry is removed immediately after, so the moved-from state is never
    // observed.
    Entry& top = const_cast<Entry&>(heap_.top());
    const TimeMs when = top.when;
    const std::uint64_t seq = top.seq;
    Action action = std::move(top.action);
    heap_.pop();
    live_.erase(seq);
    ++counters_.heap_pops;
    if (is_cancelled(seq)) {
      forget_cancelled(seq);
      continue;
    }
    check(when >= now_, "event queue went backwards in time");
    now_ = when;
    ++counters_.events_fired;
    action();
    return true;
  }
  return false;
}

std::size_t Simulator::run() {
  ESG_PROF_SCOPE("sim/run");
  std::size_t fired = 0;
  while (step()) ++fired;
  return fired;
}

std::size_t Simulator::run_until(TimeMs deadline) {
  ESG_PROF_SCOPE("sim/run_until");
  std::size_t fired = 0;
  while (!heap_.empty()) {
    // Peek: drop cancelled entries so the time check sees a live event.
    while (!heap_.empty() && is_cancelled(heap_.top().seq)) {
      forget_cancelled(heap_.top().seq);
      live_.erase(heap_.top().seq);
      heap_.pop();
      ++counters_.heap_pops;
    }
    if (heap_.empty() || heap_.top().when > deadline) break;
    if (step()) ++fired;
  }
  now_ = std::max(now_, deadline);
  return fired;
}

}  // namespace esg::sim
