#include "sim/simulator.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "common/check.hpp"
#include "perf/profiler.hpp"

namespace esg::sim {

const char* engine_name(EngineKind engine) {
  return engine == EngineKind::kHeap ? "heap" : "calendar";
}

std::optional<EngineKind> parse_engine(std::string_view name) {
  if (name == "heap") return EngineKind::kHeap;
  if (name == "calendar") return EngineKind::kCalendar;
  return std::nullopt;
}

EventHandle Simulator::schedule_in(TimeMs delay, Action action) {
  if (delay < 0.0) throw std::invalid_argument("Simulator: negative delay");
  return schedule_at(now_ + delay, std::move(action));
}

EventHandle Simulator::schedule_at(TimeMs when, Action action) {
  if (when < now_) throw std::invalid_argument("Simulator: schedule in the past");
  if (!action) throw std::invalid_argument("Simulator: empty action");
  const std::uint64_t seq = next_seq_++;
  if (engine_ == EngineKind::kHeap) {
    heap_.push(Entry{when, seq, std::move(action)});
  } else {
    calendar_.push(CalendarItem{when, seq, std::move(action)});
  }
  seq_state_.push_back(kSeqLive);  // index seq - 1: seqs are dense from 1
  ++counters_.events_scheduled;
  ++counters_.heap_pushes;
  return EventHandle(seq);
}

void Simulator::cancel(EventHandle handle) {
  if (!handle.valid()) return;
  // A handle whose event already fired (or was cancelled before) must stay a
  // no-op; recording it again would make pending() undercount forever.
  if (handle.seq_ > seq_state_.size()) return;
  std::uint8_t& state = seq_state_[handle.seq_ - 1];
  if (state != kSeqLive) return;
  state = kSeqCancelled;
  ++cancelled_;
  ++counters_.events_cancelled;
}

bool Simulator::pop_next(TimeMs& when, std::uint64_t& seq, Action& action) {
  if (engine_ == EngineKind::kHeap) {
    if (heap_.empty()) return false;
    // priority_queue::top is const; the entry is copied cheaply except for
    // the action, which we move out via const_cast before popping — the
    // entry is removed immediately after, so the moved-from state is never
    // observed.
    Entry& top = const_cast<Entry&>(heap_.top());
    when = top.when;
    seq = top.seq;
    action = std::move(top.action);
    heap_.pop();
  } else {
    if (calendar_.empty()) return false;
    CalendarItem item = calendar_.pop_min();
    when = item.when;
    seq = item.seq;
    action = std::move(item.action);
  }
  ++counters_.heap_pops;
  return true;
}

bool Simulator::peek_next(TimeMs& when, std::uint64_t& seq) {
  if (engine_ == EngineKind::kHeap) {
    if (heap_.empty()) return false;
    when = heap_.top().when;
    seq = heap_.top().seq;
    return true;
  }
  const CalendarItem* item = calendar_.peek();
  if (item == nullptr) return false;
  when = item->when;
  seq = item->seq;
  return true;
}

bool Simulator::consume_cancelled(std::uint64_t seq) {
  const std::uint8_t state =
      std::exchange(seq_state_[seq - 1], static_cast<std::uint8_t>(kSeqDone));
  if (state != kSeqCancelled) return false;
  check(cancelled_ > 0, "cancelled counter underflow");
  --cancelled_;
  return true;
}

bool Simulator::step() {
  ESG_PROF_SCOPE("sim/step");
  TimeMs when = 0.0;
  std::uint64_t seq = 0;
  Action action;
  while (pop_next(when, seq, action)) {
    if (consume_cancelled(seq)) continue;
    check(when >= now_, "event queue went backwards in time");
    now_ = when;
    ++counters_.events_fired;
    action();
    return true;
  }
  return false;
}

std::size_t Simulator::run() {
  ESG_PROF_SCOPE("sim/run");
  std::size_t fired = 0;
  while (step()) ++fired;
  return fired;
}

std::size_t Simulator::run_until(TimeMs deadline) {
  ESG_PROF_SCOPE("sim/run_until");
  std::size_t fired = 0;
  TimeMs when = 0.0;
  std::uint64_t seq = 0;
  while (peek_next(when, seq)) {
    // Drop cancelled entries at the top so the time check sees a live event.
    if (seq_state_[seq - 1] == kSeqCancelled) {
      Action discarded;
      pop_next(when, seq, discarded);
      consume_cancelled(seq);
      continue;
    }
    if (when > deadline) break;
    if (step()) ++fired;
  }
  now_ = std::max(now_, deadline);
  return fired;
}

}  // namespace esg::sim
