// Deterministic discrete-event simulation engine.
//
// Events are closures scheduled at absolute simulated times; ties are broken
// by insertion order (a monotonically increasing sequence number), so a run
// is bit-reproducible for a fixed seed. Handlers may schedule further events
// and may cancel previously scheduled ones via the returned handle.
//
// Two interchangeable priority structures back the queue (DESIGN.md §15): a
// binary min-heap and a calendar queue with O(1) amortized schedule/fire.
// Both fire in identical (when, seq) order and maintain identical counters,
// so every artefact is byte-identical across engines.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <string_view>
#include <vector>

#include "common/types.hpp"
#include "perf/counters.hpp"
#include "sim/calendar_queue.hpp"

namespace esg::sim {

/// Which priority structure backs the event queue. The calendar queue is the
/// default; the heap stays selectable (--engine heap) so historic artefacts
/// remain reproducible and CI can cross-check byte-identity.
enum class EngineKind { kHeap, kCalendar };

/// "heap" or "calendar" (stable CLI/artefact spelling).
[[nodiscard]] const char* engine_name(EngineKind engine);

/// Parses the CLI spelling; nullopt when unrecognised.
[[nodiscard]] std::optional<EngineKind> parse_engine(std::string_view name);

/// Handle for cancelling a scheduled event. Default-constructed = invalid.
class EventHandle {
 public:
  EventHandle() = default;

  [[nodiscard]] bool valid() const { return seq_ != 0; }

 private:
  friend class Simulator;
  explicit EventHandle(std::uint64_t seq) : seq_(seq) {}
  std::uint64_t seq_ = 0;
};

class Simulator {
 public:
  using Action = std::function<void()>;

  explicit Simulator(EngineKind engine = EngineKind::kCalendar)
      : engine_(engine) {}

  [[nodiscard]] EngineKind engine() const { return engine_; }

  /// Current simulated time in milliseconds.
  [[nodiscard]] TimeMs now() const { return now_; }

  /// Schedules `action` to fire at now() + delay. delay must be >= 0.
  EventHandle schedule_in(TimeMs delay, Action action);

  /// Schedules `action` at absolute time `when` (>= now()).
  EventHandle schedule_at(TimeMs when, Action action);

  /// Cancels a pending event; no-op if it already fired or was cancelled.
  void cancel(EventHandle handle);

  /// Runs until the event queue drains. Returns the number of events fired.
  std::size_t run();

  /// Runs until the queue drains or simulated time would exceed `deadline`.
  /// Events scheduled after the deadline stay in the queue.
  std::size_t run_until(TimeMs deadline);

  /// Fires the single earliest event. Returns false if the queue is empty.
  bool step();

  [[nodiscard]] std::size_t pending() const {
    return queue_size() - cancelled_;
  }
  [[nodiscard]] bool empty() const { return pending() == 0; }

  /// Always-on hot-path counters for the event loop (DESIGN.md §13).
  [[nodiscard]] const perf::Counters& counters() const { return counters_; }

 private:
  struct Entry {
    TimeMs when;
    std::uint64_t seq;
    Action action;

    bool operator>(const Entry& other) const {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  // Per-event lifecycle, indexed by seq - 1 (seqs are dense from 1). One byte
  // per event ever scheduled buys O(1) cancel and cancelled-drop checks;
  // cancellation stays lazy — the queue entry is dropped when it surfaces.
  enum SeqState : std::uint8_t { kSeqLive = 0, kSeqCancelled = 1, kSeqDone = 2 };

  [[nodiscard]] std::size_t queue_size() const {
    return engine_ == EngineKind::kHeap ? heap_.size() : calendar_.size();
  }
  /// Removes the minimum entry (counts a heap_pop). False when empty.
  bool pop_next(TimeMs& when, std::uint64_t& seq, Action& action);
  /// Reads the minimum entry's key without removing it. False when empty.
  bool peek_next(TimeMs& when, std::uint64_t& seq);
  /// Marks `seq` done; true (and bookkeeping updated) if it was cancelled.
  bool consume_cancelled(std::uint64_t seq);

  EngineKind engine_;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  CalendarQueue calendar_;
  std::vector<std::uint8_t> seq_state_;
  std::size_t cancelled_ = 0;
  TimeMs now_ = 0.0;
  std::uint64_t next_seq_ = 1;
  perf::Counters counters_;
};

}  // namespace esg::sim
