// Deterministic discrete-event simulation engine.
//
// Events are closures scheduled at absolute simulated times; ties are broken
// by insertion order (a monotonically increasing sequence number), so a run
// is bit-reproducible for a fixed seed. Handlers may schedule further events
// and may cancel previously scheduled ones via the returned handle.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/types.hpp"
#include "perf/counters.hpp"

namespace esg::sim {

/// Handle for cancelling a scheduled event. Default-constructed = invalid.
class EventHandle {
 public:
  EventHandle() = default;

  [[nodiscard]] bool valid() const { return seq_ != 0; }

 private:
  friend class Simulator;
  explicit EventHandle(std::uint64_t seq) : seq_(seq) {}
  std::uint64_t seq_ = 0;
};

class Simulator {
 public:
  using Action = std::function<void()>;

  /// Current simulated time in milliseconds.
  [[nodiscard]] TimeMs now() const { return now_; }

  /// Schedules `action` to fire at now() + delay. delay must be >= 0.
  EventHandle schedule_in(TimeMs delay, Action action);

  /// Schedules `action` at absolute time `when` (>= now()).
  EventHandle schedule_at(TimeMs when, Action action);

  /// Cancels a pending event; no-op if it already fired or was cancelled.
  void cancel(EventHandle handle);

  /// Runs until the event queue drains. Returns the number of events fired.
  std::size_t run();

  /// Runs until the queue drains or simulated time would exceed `deadline`.
  /// Events scheduled after the deadline stay in the queue.
  std::size_t run_until(TimeMs deadline);

  /// Fires the single earliest event. Returns false if the queue is empty.
  bool step();

  [[nodiscard]] std::size_t pending() const { return heap_.size() - cancelled_; }
  [[nodiscard]] bool empty() const { return pending() == 0; }

  /// Always-on hot-path counters for the event loop (DESIGN.md §13).
  [[nodiscard]] const perf::Counters& counters() const { return counters_; }

 private:
  struct Entry {
    TimeMs when;
    std::uint64_t seq;
    Action action;  // empty after cancellation

    bool operator>(const Entry& other) const {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  // Min-heap over (when, seq). Cancellation is lazy: the handle's seq is
  // recorded and the entry dropped when it reaches the top. `live_` holds the
  // seqs still in the heap so cancelling a fired (or already-cancelled) handle
  // is a true no-op and cannot skew the pending() count.
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::unordered_set<std::uint64_t> live_;
  std::vector<std::uint64_t> cancelled_seqs_;
  std::size_t cancelled_ = 0;
  TimeMs now_ = 0.0;
  std::uint64_t next_seq_ = 1;
  perf::Counters counters_;

  [[nodiscard]] bool is_cancelled(std::uint64_t seq) const;
  void forget_cancelled(std::uint64_t seq);
};

}  // namespace esg::sim
