// Calendar-queue priority structure for the simulation engine (DESIGN.md §15).
//
// A calendar queue (R. Brown, CACM 1988) spreads pending events over an array
// of day buckets of width `width_` ms; the bucket for an event is
// floor(when / width) mod nbuckets. Because simulated time never moves
// backwards past the queue minimum, dequeue scans at most one lap of the
// calendar starting from the day of the last minimum before falling back to a
// direct search, and the bucket array is resized (with a re-estimated width)
// whenever occupancy drifts, keeping both enqueue and dequeue O(1) amortized.
//
// Ordering contract: pop_min() returns items in strictly ascending
// (when, seq) order — identical to a binary min-heap over the same keys — so
// the two Simulator engines produce byte-identical runs. Equal-timestamp
// items fire in insertion (seq) order.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.hpp"

namespace esg::sim {

/// One pending event: absolute fire time, insertion sequence number (FIFO
/// tie-break), and the closure to run.
struct CalendarItem {
  TimeMs when = 0.0;
  std::uint64_t seq = 0;
  std::function<void()> action;
};

class CalendarQueue {
 public:
  CalendarQueue();

  /// Inserts an item. `when` must be >= the last popped minimum (enforced by
  /// Simulator, which never schedules in the past).
  void push(CalendarItem item);

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }

  /// Pointer to the minimum (when, seq) item, or nullptr when empty. Valid
  /// until the next push or pop (the located position is cached, so a peek
  /// followed by pop_min does not scan twice).
  [[nodiscard]] const CalendarItem* peek();

  /// Removes and returns the minimum (when, seq) item. Precondition: !empty().
  CalendarItem pop_min();

  /// Current bucket count (exposed for tests exercising resize behavior).
  [[nodiscard]] std::size_t bucket_count() const { return buckets_.size(); }

 private:
  [[nodiscard]] std::uint64_t day_of(TimeMs when) const {
    return static_cast<std::uint64_t>(when / width_);
  }
  [[nodiscard]] std::size_t bucket_of(std::uint64_t day) const {
    return static_cast<std::size_t>(day & mask_);
  }

  void locate_min();
  void resize(std::size_t nbuckets);

  std::vector<std::vector<CalendarItem>> buckets_;
  std::uint64_t mask_ = 0;   ///< bucket_count - 1 (bucket count is a power of 2)
  TimeMs width_ = 1.0;       ///< day width in simulated ms
  std::size_t size_ = 0;
  std::uint64_t cur_day_ = 0;  ///< day of the last popped minimum (lower bound)

  // Cached location of the current minimum, maintained across pushes so that
  // peek + pop_min costs one scan. Invalidated by pop_min and resize.
  bool min_cached_ = false;
  std::size_t min_bucket_ = 0;
  std::size_t min_pos_ = 0;
};

}  // namespace esg::sim
