#include "sim/calendar_queue.hpp"

#include <utility>

#include "common/check.hpp"

namespace esg::sim {

namespace {

constexpr std::size_t kMinBuckets = 16;

bool item_less(const CalendarItem& a, const CalendarItem& b) {
  if (a.when != b.when) return a.when < b.when;
  return a.seq < b.seq;
}

}  // namespace

CalendarQueue::CalendarQueue()
    : buckets_(kMinBuckets), mask_(kMinBuckets - 1) {}

void CalendarQueue::push(CalendarItem item) {
  const std::uint64_t day = day_of(item.when);
  // Keep cur_day_ a lower bound over every pending item's day: run_until may
  // drop a cancelled entry past its deadline, after which the caller can
  // legally schedule earlier than the last popped item.
  if (day < cur_day_) cur_day_ = day;
  const std::size_t b = bucket_of(day);
  buckets_[b].push_back(std::move(item));
  ++size_;
  if (min_cached_ &&
      item_less(buckets_[b].back(), buckets_[min_bucket_][min_pos_])) {
    min_bucket_ = b;
    min_pos_ = buckets_[b].size() - 1;
  }
  if (size_ > buckets_.size() * 2) resize(buckets_.size() * 2);
}

const CalendarItem* CalendarQueue::peek() {
  if (size_ == 0) return nullptr;
  locate_min();
  return &buckets_[min_bucket_][min_pos_];
}

CalendarItem CalendarQueue::pop_min() {
  check(size_ > 0, "CalendarQueue: pop_min on empty queue");
  locate_min();
  std::vector<CalendarItem>& bucket = buckets_[min_bucket_];
  CalendarItem item = std::move(bucket[min_pos_]);
  if (min_pos_ + 1 != bucket.size()) bucket[min_pos_] = std::move(bucket.back());
  bucket.pop_back();
  --size_;
  min_cached_ = false;
  cur_day_ = day_of(item.when);
  if (buckets_.size() > kMinBuckets && size_ < buckets_.size() / 2) {
    resize(buckets_.size() / 2);
  }
  return item;
}

void CalendarQueue::locate_min() {
  if (min_cached_) return;
  check(size_ > 0, "CalendarQueue: locate_min on empty queue");
  const std::size_t n = buckets_.size();
  // One calendar lap starting at the lower-bound day: the first day that owns
  // an item owns the minimum, and within that day the lowest (when, seq) wins.
  std::uint64_t day = cur_day_;
  for (std::size_t lap = 0; lap < n; ++lap, ++day) {
    const std::vector<CalendarItem>& bucket = buckets_[bucket_of(day)];
    bool found = false;
    std::size_t best = 0;
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      if (day_of(bucket[i].when) != day) continue;  // a later lap's item
      if (!found || item_less(bucket[i], bucket[best])) {
        best = i;
        found = true;
      }
    }
    if (found) {
      min_bucket_ = bucket_of(day);
      min_pos_ = best;
      min_cached_ = true;
      cur_day_ = day;
      return;
    }
  }
  // Every pending item lies more than one lap ahead (a quiet stretch wider
  // than the whole calendar): fall back to a direct search over all items.
  bool found = false;
  for (std::size_t b = 0; b < n; ++b) {
    const std::vector<CalendarItem>& bucket = buckets_[b];
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      if (!found || item_less(bucket[i], buckets_[min_bucket_][min_pos_])) {
        min_bucket_ = b;
        min_pos_ = i;
        found = true;
      }
    }
  }
  check(found, "CalendarQueue: direct search found no item");
  min_cached_ = true;
  cur_day_ = day_of(buckets_[min_bucket_][min_pos_].when);
}

void CalendarQueue::resize(std::size_t nbuckets) {
  // Re-estimate the day width from the live spread so an average day holds a
  // handful of items regardless of event density; identical input sequences
  // resize identically, preserving determinism.
  TimeMs lo = 0.0;
  TimeMs hi = 0.0;
  bool first = true;
  for (const std::vector<CalendarItem>& bucket : buckets_) {
    for (const CalendarItem& item : bucket) {
      if (first || item.when < lo) lo = item.when;
      if (first || item.when > hi) hi = item.when;
      first = false;
    }
  }
  if (size_ >= 2 && hi > lo) {
    const TimeMs avg_gap = (hi - lo) / static_cast<TimeMs>(size_);
    width_ = avg_gap * 4.0;
    if (width_ < 1e-9) width_ = 1e-9;
  }
  std::vector<std::vector<CalendarItem>> old = std::move(buckets_);
  buckets_.assign(nbuckets, {});
  mask_ = static_cast<std::uint64_t>(nbuckets) - 1;
  min_cached_ = false;
  cur_day_ = first ? 0 : day_of(lo);
  for (std::vector<CalendarItem>& bucket : old) {
    for (CalendarItem& item : bucket) {
      buckets_[bucket_of(day_of(item.when))].push_back(std::move(item));
    }
  }
}

}  // namespace esg::sim
