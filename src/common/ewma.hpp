// Exponentially weighted moving average, used by the pre-warming predictor
// (Section 4: "uses EWMA to predict the invocation intervals of functions").
#pragma once

#include <stdexcept>

namespace esg {

class Ewma {
 public:
  /// alpha in (0, 1]: weight of the newest observation.
  explicit Ewma(double alpha) : alpha_(alpha) {
    if (!(alpha > 0.0) || alpha > 1.0) {
      throw std::invalid_argument("Ewma: alpha must be in (0, 1]");
    }
  }

  void observe(double x) {
    if (!initialized_) {
      value_ = x;
      initialized_ = true;
    } else {
      value_ = alpha_ * x + (1.0 - alpha_) * value_;
    }
  }

  [[nodiscard]] bool initialized() const { return initialized_; }
  /// Current estimate; 0 until the first observation.
  [[nodiscard]] double value() const { return initialized_ ? value_ : 0.0; }
  [[nodiscard]] double alpha() const { return alpha_; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

}  // namespace esg
