// Minimal ASCII table printer used by the bench harness to emit the rows of
// each paper table/figure in a uniform, diffable format.
#pragma once

#include <initializer_list>
#include <string>
#include <vector>

namespace esg {

class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 2);
  /// Formats a ratio as a percentage string, e.g. 0.613 -> "61.3%".
  static std::string pct(double ratio, int precision = 1);

  [[nodiscard]] std::string render() const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace esg
