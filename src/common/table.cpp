#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace esg {

AsciiTable::AsciiTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("AsciiTable: no headers");
}

void AsciiTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("AsciiTable: row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string AsciiTable::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string AsciiTable::pct(double ratio, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, ratio * 100.0);
  return buf;
}

std::string AsciiTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    out += '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += ' ';
      out += row[c];
      out.append(widths[c] - row[c].size() + 1, ' ');
      out += '|';
    }
    out += '\n';
  };

  std::string out;
  emit_row(headers_, out);
  out += '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out.append(widths[c] + 2, '-');
    out += '|';
  }
  out += '\n';
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

}  // namespace esg
