#include "common/build_info.hpp"

#include <cstdio>
#include <thread>

#ifdef __unix__
#include <sys/utsname.h>
#endif

#ifndef ESG_BUILD_COMMIT
#define ESG_BUILD_COMMIT "unknown"
#endif
#ifndef ESG_BUILD_TYPE
#define ESG_BUILD_TYPE "unknown"
#endif

namespace esg::common {

namespace {

/// Keeps captured strings safe to embed in a JSON string literal.
std::string json_safe(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\' || static_cast<unsigned char>(c) < 0x20) continue;
    out += c;
  }
  return out;
}

std::string first_line_of(const char* command) {
  std::string out;
#ifdef __unix__
  if (std::FILE* pipe = ::popen(command, "r")) {
    char buf[256];
    if (std::fgets(buf, sizeof(buf), pipe) != nullptr) out = buf;
    ::pclose(pipe);
  }
#else
  (void)command;
#endif
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
    out.pop_back();
  }
  return out;
}

std::string compiler_id() {
#if defined(__clang__)
  return "clang++ " + std::to_string(__clang_major__) + "." +
         std::to_string(__clang_minor__) + "." +
         std::to_string(__clang_patchlevel__);
#elif defined(__GNUC__)
  return "g++ " + std::to_string(__GNUC__) + "." +
         std::to_string(__GNUC_MINOR__) + "." +
         std::to_string(__GNUC_PATCHLEVEL__);
#else
  return "unknown";
#endif
}

}  // namespace

BuildInfo build_info() {
  BuildInfo info;
  info.commit = first_line_of("git rev-parse --short HEAD 2>/dev/null");
  if (info.commit.empty()) info.commit = ESG_BUILD_COMMIT;
  info.compiler = compiler_id();
  info.build_type = ESG_BUILD_TYPE;
#ifdef ESG_SANITIZE_BUILD
  info.sanitize = true;
#endif
#ifdef ESG_PROFILE_BUILD
  info.profile = true;
#endif
#ifdef __unix__
  utsname uts{};
  if (::uname(&uts) == 0) {
    info.host = uts.nodename;
    info.kernel = std::string(uts.sysname) + " " + uts.release;
  }
#endif
  if (info.host.empty()) info.host = "unknown";
  if (info.kernel.empty()) info.kernel = "unknown";
  info.cpus = std::thread::hardware_concurrency();
  return info;
}

std::string version_line(const std::string& tool) {
  const BuildInfo info = build_info();
  std::string line = tool + " (esg) commit " + info.commit + " · " +
                     info.compiler + " · " + info.build_type;
  if (info.sanitize) line += " · sanitize";
  if (info.profile) line += " · profile";
  return line;
}

void write_build_info(std::FILE* out, const std::string& tool) {
  const BuildInfo info = build_info();
  std::fprintf(out, "tool: %s\n", tool.c_str());
  std::fprintf(out, "commit: %s\n", info.commit.c_str());
  std::fprintf(out, "compiler: %s\n", info.compiler.c_str());
  std::fprintf(out, "build_type: %s\n", info.build_type.c_str());
  std::fprintf(out, "sanitize: %s\n", info.sanitize ? "on" : "off");
  std::fprintf(out, "profile: %s\n", info.profile ? "on" : "off");
  std::fprintf(out, "host: %s\n", info.host.c_str());
  std::fprintf(out, "kernel: %s\n", info.kernel.c_str());
  std::fprintf(out, "cpus: %u\n", info.cpus);
}

std::string meta_json_object() {
  const BuildInfo info = build_info();
  std::string out = "{\"host\": \"" + json_safe(info.host) + "\", ";
  out += "\"kernel\": \"" + json_safe(info.kernel) + "\", ";
  out += "\"cpus\": " + std::to_string(info.cpus) + ", ";
  out += "\"commit\": \"" + json_safe(info.commit) + "\"}";
  return out;
}

}  // namespace esg::common
