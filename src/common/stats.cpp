#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

namespace esg {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

Summary summarize(const std::vector<double>& values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  auto at = [&](double q) {
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const auto hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
  };
  s.min = sorted.front();
  s.p25 = at(0.25);
  s.median = at(0.5);
  s.p75 = at(0.75);
  s.p95 = at(0.95);
  s.max = sorted.back();
  double sum = 0.0;
  for (double v : sorted) sum += v;
  s.mean = sum / static_cast<double>(sorted.size());
  return s;
}

}  // namespace esg
