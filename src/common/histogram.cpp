#include "common/histogram.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace esg {

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi) {
  if (!(hi > lo)) throw std::invalid_argument("Histogram: hi must exceed lo");
  if (bins == 0) throw std::invalid_argument("Histogram: need at least one bin");
  counts_.assign(bins, 0);
}

void Histogram::add(double x) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<long>((x - lo_) / width);
  idx = std::clamp<long>(idx, 0, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bin_lo(std::size_t bin) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const {
  return bin_lo(bin) + (hi_ - lo_) / static_cast<double>(counts_.size());
}

double Histogram::fraction_at(std::size_t bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_.at(bin)) / static_cast<double>(total_);
}

std::string Histogram::render(std::size_t bar_width) const {
  const std::size_t peak = counts_.empty()
                               ? 0
                               : *std::max_element(counts_.begin(), counts_.end());
  std::string out;
  char line[160];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::size_t bar =
        peak == 0 ? 0 : counts_[i] * bar_width / std::max<std::size_t>(peak, 1);
    std::snprintf(line, sizeof line, "[%8.2f, %8.2f) %8zu | ", bin_lo(i),
                  bin_hi(i), counts_[i]);
    out += line;
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

}  // namespace esg
