#include "common/histogram.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace esg {

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi) {
  if (!(hi > lo)) throw std::invalid_argument("Histogram: hi must exceed lo");
  if (bins == 0) throw std::invalid_argument("Histogram: need at least one bin");
  counts_.assign(bins, 0);
}

void Histogram::add(double x) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<long>((x - lo_) / width);
  idx = std::clamp<long>(idx, 0, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bin_lo(std::size_t bin) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const {
  return bin_lo(bin) + (hi_ - lo_) / static_cast<double>(counts_.size());
}

double Histogram::fraction_at(std::size_t bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_.at(bin)) / static_cast<double>(total_);
}

double Histogram::quantile(double q) const {
  if (total_ == 0) return lo_;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the sample the quantile falls on, in [0, total - 1] like the
  // sorted-vector percentile(); then interpolate uniformly inside the bin
  // that holds that rank.
  const double rank = q * static_cast<double>(total_ - 1);
  double seen = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto in_bin = static_cast<double>(counts_[i]);
    if (in_bin == 0.0) continue;
    if (rank < seen + in_bin) {
      // Position the rank among this bin's samples, treating them as evenly
      // spread over the bin; one sample sits at the bin midpoint.
      const double within = (rank - seen + 0.5) / in_bin;
      return bin_lo(i) + within * (bin_hi(i) - bin_lo(i));
    }
    seen += in_bin;
  }
  return bin_hi(counts_.size() - 1);
}

void Histogram::merge(const Histogram& other) {
  if (other.lo_ != lo_ || other.hi_ != hi_ ||
      other.counts_.size() != counts_.size()) {
    throw std::invalid_argument("Histogram::merge: incompatible shape");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  total_ += other.total_;
}

std::string Histogram::render(std::size_t bar_width) const {
  const std::size_t peak = counts_.empty()
                               ? 0
                               : *std::max_element(counts_.begin(), counts_.end());
  std::string out;
  char line[160];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::size_t bar =
        peak == 0 ? 0 : counts_[i] * bar_width / std::max<std::size_t>(peak, 1);
    std::snprintf(line, sizeof line, "[%8.2f, %8.2f) %8zu | ", bin_lo(i),
                  bin_hi(i), counts_[i]);
    out += line;
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

}  // namespace esg
