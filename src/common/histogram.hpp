// Fixed-bin histogram with ASCII rendering, used by the Figure 5 bench and
// by latency distribution reports.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace esg {

class Histogram {
 public:
  /// Uniform bins over [lo, hi); values outside are clamped into the
  /// first/last bin so no sample is dropped silently.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
  [[nodiscard]] std::size_t count_at(std::size_t bin) const { return counts_.at(bin); }
  [[nodiscard]] double bin_lo(std::size_t bin) const;
  [[nodiscard]] double bin_hi(std::size_t bin) const;
  /// Fraction of samples in the bin; 0 if the histogram is empty.
  [[nodiscard]] double fraction_at(std::size_t bin) const;

  /// Approximate quantile (q in [0, 1]) by linear interpolation inside the
  /// bin where the cumulative count crosses q * total. An empty histogram
  /// returns lo; a single sample returns the midpoint of its bin. q is
  /// clamped into [0, 1].
  [[nodiscard]] double quantile(double q) const;

  /// Adds another histogram's counts bin-by-bin. Both histograms must share
  /// the same range and bin count; throws std::invalid_argument otherwise.
  void merge(const Histogram& other);

  /// Multi-line bar rendering: one row per bin with counts and a bar.
  [[nodiscard]] std::string render(std::size_t bar_width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace esg
