// Fundamental vocabulary types shared by every module.
//
// Times are simulated milliseconds stored as double (the paper quotes all
// latencies in ms); money is USD as double. Entity identifiers are small
// strong types so that a JobId cannot be silently passed where an InvokerId
// is expected.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <limits>

namespace esg {

/// Simulated time in milliseconds.
using TimeMs = double;

/// Cost in US dollars.
using Usd = double;

/// Sentinel for "no time" / "not yet happened".
inline constexpr TimeMs kNoTime = std::numeric_limits<TimeMs>::infinity();

namespace detail {

/// CRTP-free strong integer id. Tag makes each instantiation distinct.
template <class Tag>
struct StrongId {
  std::uint32_t value{kInvalid};

  static constexpr std::uint32_t kInvalid = 0xffffffffu;

  constexpr StrongId() = default;
  constexpr explicit StrongId(std::uint32_t v) : value(v) {}

  [[nodiscard]] constexpr bool valid() const { return value != kInvalid; }
  [[nodiscard]] constexpr std::uint32_t get() const { return value; }

  constexpr auto operator<=>(const StrongId&) const = default;
};

}  // namespace detail

struct FunctionTag;
struct AppTag;
struct RequestTag;
struct InvokerTag;
struct JobTag;
struct TaskTag;
struct QueueTag;
struct TenantTag;

/// One DNN serverless function (e.g. "deblur").
using FunctionId = detail::StrongId<FunctionTag>;
/// One application, i.e. a DAG of functions with an end-to-end SLO.
using AppId = detail::StrongId<AppTag>;
/// One end-to-end invocation of an application.
using RequestId = detail::StrongId<RequestTag>;
/// One worker node.
using InvokerId = detail::StrongId<InvokerTag>;
/// One inference request for one function ("job" in the paper).
using JobId = detail::StrongId<JobTag>;
/// A batch of jobs dispatched as one function invocation ("task").
using TaskId = detail::StrongId<TaskTag>;
/// One application-function-wise (AFW) queue.
using QueueId = detail::StrongId<QueueTag>;
/// One tenant (billing/isolation principal) sharing the cluster.
using TenantId = detail::StrongId<TenantTag>;

}  // namespace esg

template <class Tag>
struct std::hash<esg::detail::StrongId<Tag>> {
  std::size_t operator()(const esg::detail::StrongId<Tag>& id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value);
  }
};
