// Streaming and batch statistics used by the metric collectors and benches.
#pragma once

#include <cstddef>
#include <vector>

namespace esg {

/// Welford-style running mean/variance with min/max tracking.
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ > 0 ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

  /// Merges another accumulator (parallel reduction support).
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Percentile with linear interpolation on a copy of the data; q in [0, 1].
/// Returns 0 for empty input.
[[nodiscard]] double percentile(std::vector<double> values, double q);

/// Five-number + mean summary, handy for box-plot style reporting (Fig. 10).
struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double p95 = 0.0;
  double max = 0.0;
  double mean = 0.0;
};

[[nodiscard]] Summary summarize(const std::vector<double>& values);

}  // namespace esg
