// Build and host provenance shared by every CLI (--version/--build-info)
// and every checked-in BENCH/perf artefact's "meta" block.
#pragma once

#include <cstdio>
#include <string>

namespace esg::common {

struct BuildInfo {
  std::string commit;      ///< git HEAD at run time, else the configure-time bake
  std::string compiler;    ///< e.g. "g++ 12.2.0"
  std::string build_type;  ///< CMAKE_BUILD_TYPE at configure time
  bool sanitize = false;   ///< built with ESG_SANITIZE=ON
  bool profile = false;    ///< built with ESG_PROFILE=ON (ESG_PROF_SCOPE live)
  std::string host;        ///< uname nodename, "unknown" off-unix
  std::string kernel;      ///< uname "sysname release"
  unsigned cpus = 0;       ///< std::thread::hardware_concurrency()
};

/// Gathers the full provenance record. Host fields come from uname; the
/// commit prefers `git rev-parse` at run time (so artefacts regenerated from
/// a checkout are stamped with the *current* revision) and falls back to the
/// commit baked in at configure time.
[[nodiscard]] BuildInfo build_info();

/// One-line --version output: "<tool> (esg) commit <c> · <compiler> ·
/// <build_type>[ · sanitize][ · profile]".
[[nodiscard]] std::string version_line(const std::string& tool);

/// Multi-line --build-info output (key: value per line).
void write_build_info(std::FILE* out, const std::string& tool);

/// The shared provenance object for BENCH/perf JSON artefacts:
///   {"host": ..., "kernel": ..., "cpus": N, "commit": ...}
/// (no surrounding key, no trailing newline). Keys and order are frozen —
/// esg_perfdiff and the checked-in baselines rely on them.
[[nodiscard]] std::string meta_json_object();

}  // namespace esg::common
