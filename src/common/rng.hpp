// Deterministic random-number infrastructure.
//
// Every experiment draws all randomness from a single master seed through
// SplitMix64-derived sub-streams, so runs are bit-reproducible regardless of
// the order in which components are constructed. Xoshiro256** is used for
// the streams themselves (fast, high quality, trivially copyable).
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace esg {

/// SplitMix64: used to seed sub-streams; also a fine tiny PRNG on its own.
class SplitMix64 {
 public:
  constexpr explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256** PRNG. Satisfies UniformRandomBitGenerator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words via SplitMix64 as recommended by the authors.
  explicit Xoshiro256(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  result_type operator()() { return next(); }
  result_type next();

 private:
  std::array<std::uint64_t, 4> s_{};
};

/// A named random stream: uniform / Gaussian / range helpers on Xoshiro256.
class RngStream {
 public:
  explicit RngStream(std::uint64_t seed) : gen_(seed) {}

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t below(std::uint64_t n);
  /// Standard normal via Marsaglia polar method.
  double gaussian();
  /// Normal with the given mean and standard deviation.
  double gaussian(double mean, double stddev);
  /// Bernoulli(p).
  bool chance(double p);

  Xoshiro256& generator() { return gen_; }

 private:
  Xoshiro256 gen_;
  bool has_spare_ = false;
  double spare_ = 0.0;
};

/// Derives independent sub-streams from one master seed, keyed by label.
/// Identical (seed, label, index) always yields the same stream.
class RngFactory {
 public:
  explicit RngFactory(std::uint64_t master_seed) : master_seed_(master_seed) {}

  /// Stream for a named component (e.g. "arrivals", "noise").
  [[nodiscard]] RngStream stream(std::string_view label, std::uint64_t index = 0) const;

  /// Derived factory for a named subsystem: every stream drawn from the
  /// scoped factory is independent of every stream of this factory (and of
  /// any differently-labelled scope). Optional subsystems — fault injection,
  /// future what-if knobs — draw through a scope so that enabling them
  /// cannot perturb the base streams (arrivals, noise, ...) of a run.
  [[nodiscard]] RngFactory scoped(std::string_view label) const;

  [[nodiscard]] std::uint64_t master_seed() const { return master_seed_; }

 private:
  std::uint64_t master_seed_;
};

}  // namespace esg
