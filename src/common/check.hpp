// Error-checking helpers. Invariant violations throw std::logic_error with a
// location-tagged message; precondition failures on user input throw
// std::invalid_argument at the call sites directly.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>
#include <string_view>

namespace esg {

/// Throws std::logic_error if `condition` is false. Used for internal
/// invariants; never for recoverable user errors.
inline void check(bool condition, std::string_view message,
                  std::source_location loc = std::source_location::current()) {
  if (!condition) {
    throw std::logic_error(std::string(loc.file_name()) + ":" +
                           std::to_string(loc.line()) + ": invariant failed: " +
                           std::string(message));
  }
}

}  // namespace esg
