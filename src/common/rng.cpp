#include "common/rng.hpp"

#include <cmath>
#include <stdexcept>

namespace esg {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

/// FNV-1a over the label, mixed with the index; stable across platforms.
std::uint64_t hash_label(std::string_view label, std::uint64_t index) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (char c : label) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  h ^= index + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
}

Xoshiro256::result_type Xoshiro256::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double RngStream::uniform() {
  // 53-bit mantissa trick: uniform in [0, 1).
  return static_cast<double>(gen_.next() >> 11) * 0x1.0p-53;
}

double RngStream::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

std::uint64_t RngStream::below(std::uint64_t n) {
  if (n == 0) throw std::invalid_argument("RngStream::below: n must be > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (~n + 1) % n;  // == 2^64 mod n
  for (;;) {
    const std::uint64_t r = gen_.next();
    if (r >= threshold) return r % n;
  }
}

double RngStream::gaussian() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * factor;
  has_spare_ = true;
  return u * factor;
}

double RngStream::gaussian(double mean, double stddev) {
  return mean + stddev * gaussian();
}

bool RngStream::chance(double p) { return uniform() < p; }

RngStream RngFactory::stream(std::string_view label, std::uint64_t index) const {
  SplitMix64 sm(master_seed_ ^ hash_label(label, index));
  return RngStream(sm.next());
}

RngFactory RngFactory::scoped(std::string_view label) const {
  // A fixed index keeps scoped("x") distinct from every stream("x", i): the
  // stream seed is SplitMix64(seed ^ hash(label, i)).next() while the scoped
  // master is derived with this reserved index, so label reuse across the
  // two namespaces cannot collide.
  constexpr std::uint64_t kScopeIndex = 0x5c09edf5c09edf00ull;
  SplitMix64 sm(master_seed_ ^ hash_label(label, kScopeIndex));
  return RngFactory(sm.next());
}

}  // namespace esg
