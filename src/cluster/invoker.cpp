#include "cluster/invoker.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace esg::cluster {

void Invoker::allocate(std::uint16_t vcpus, std::uint16_t vgpus) {
  check(can_fit(vcpus, vgpus), "Invoker::allocate over-commits the node");
  used_vcpus_ = static_cast<std::uint16_t>(used_vcpus_ + vcpus);
  used_vgpus_ = static_cast<std::uint16_t>(used_vgpus_ + vgpus);
  if (index_ != nullptr) {  // can_fit implies non-retired: always counted
    index_->free_vcpus -= vcpus;
    index_->free_vgpus -= vgpus;
  }
}

void Invoker::release(std::uint16_t vcpus, std::uint16_t vgpus) {
  check(vcpus <= used_vcpus_ && vgpus <= used_vgpus_,
        "Invoker::release returns more than allocated");
  used_vcpus_ = static_cast<std::uint16_t>(used_vcpus_ - vcpus);
  used_vgpus_ = static_cast<std::uint16_t>(used_vgpus_ - vgpus);
  // A retired node cannot hold task resources (retire checks used == 0), so
  // a release always lands on a counted node.
  if (index_ != nullptr) {
    index_->free_vcpus += vcpus;
    index_->free_vgpus += vgpus;
  }
}

void Invoker::index_erase_warm() {
  if (index_ == nullptr) return;
  for (const auto& [fn, _] : warm_) {
    auto it = index_->warm.find(fn);
    if (it != index_->warm.end()) it->second.erase(id_);
  }
}

void Invoker::prune_expired(FunctionId function, TimeMs now) const {
  auto it = warm_.find(function);
  if (it == warm_.end()) return;
  auto& entries = it->second;
  if (warm_callback_) {
    for (const WarmEntry& e : entries) {
      if (e.expiry <= now) {
        warm_callback_(id_, function, e.since, e.expiry, WarmEnd::kExpired);
      }
    }
  }
  std::erase_if(entries, [now](const WarmEntry& e) { return e.expiry <= now; });
  if (entries.empty()) warm_.erase(it);
}

std::size_t Invoker::warm_count(FunctionId function, TimeMs now) const {
  prune_expired(function, now);
  auto it = warm_.find(function);
  return it == warm_.end() ? 0 : it->second.size();
}

bool Invoker::acquire_warm(FunctionId function, TimeMs now) {
  prune_expired(function, now);
  auto it = warm_.find(function);
  if (it == warm_.end()) return false;
  auto& entries = it->second;
  auto soonest = std::min_element(
      entries.begin(), entries.end(),
      [](const WarmEntry& a, const WarmEntry& b) { return a.expiry < b.expiry; });
  if (warm_callback_) {
    warm_callback_(id_, function, soonest->since, now, WarmEnd::kAcquired);
  }
  entries.erase(soonest);
  if (entries.empty()) warm_.erase(it);
  return true;
}

void Invoker::add_warm(FunctionId function, TimeMs now, TimeMs keep_alive) {
  // A dead node cannot park containers: in-flight prewarm/provisioning
  // events that land during a crash window are silently dropped. Draining
  // and retired nodes refuse new warm state the same way — the drain
  // contract is "nothing new lands here".
  if (!alive_ || state_ == NodeState::kDraining ||
      state_ == NodeState::kRetired) {
    return;
  }
  warm_[function].push_back(WarmEntry{now + keep_alive, now});
  if (index_ != nullptr) index_->warm[function].insert(id_);
}

void Invoker::crash(TimeMs now) {
  if (warm_callback_) {
    // Sorted function order: warm_ is an unordered_map and the callback
    // feeds the trace, which must stay byte-reproducible.
    std::vector<FunctionId> functions;
    functions.reserve(warm_.size());
    for (const auto& [fn, _] : warm_) functions.push_back(fn);
    std::sort(functions.begin(), functions.end());
    for (FunctionId fn : functions) {
      for (const WarmEntry& e : warm_.at(fn)) {
        // Entries that had already expired are reported as such; the rest
        // die with the node.
        warm_callback_(id_, fn, e.since, std::min(e.expiry, now),
                       e.expiry <= now ? WarmEnd::kExpired : WarmEnd::kCrashed);
      }
    }
  }
  index_erase_warm();
  warm_.clear();
  alive_ = false;
}

void Invoker::rejoin() { alive_ = true; }

void Invoker::begin_warming() {
  check(state_ == NodeState::kRetired,
        "Invoker::begin_warming: node is not retired");
  state_ = NodeState::kWarming;
  // The node rejoins the free-resource totals (used is 0 while retired).
  if (index_ != nullptr) {
    index_->free_vcpus += free_vcpus();
    index_->free_vgpus += free_vgpus();
  }
}

void Invoker::activate() {
  check(state_ == NodeState::kWarming,
        "Invoker::activate: node is not warming");
  state_ = NodeState::kActive;
}

void Invoker::begin_drain() {
  check(state_ == NodeState::kActive || state_ == NodeState::kWarming,
        "Invoker::begin_drain: node is not active or warming");
  state_ = NodeState::kDraining;
}

void Invoker::retire(TimeMs now) {
  check(state_ == NodeState::kDraining || state_ == NodeState::kWarming,
        "Invoker::retire: node is not draining or warming");
  check(used_vcpus_ == 0 && used_vgpus_ == 0,
        "Invoker::retire: node still holds task resources (leak)");
  if (warm_callback_) {
    // Sorted function order, same as crash(): the callback feeds the trace,
    // which must stay byte-reproducible.
    std::vector<FunctionId> functions;
    functions.reserve(warm_.size());
    for (const auto& [fn, _] : warm_) functions.push_back(fn);
    std::sort(functions.begin(), functions.end());
    for (FunctionId fn : functions) {
      for (const WarmEntry& e : warm_.at(fn)) {
        warm_callback_(id_, fn, e.since, std::min(e.expiry, now),
                       e.expiry <= now ? WarmEnd::kExpired : WarmEnd::kDrained);
      }
    }
  }
  index_erase_warm();
  warm_.clear();
  state_ = NodeState::kRetired;
  // The node leaves the free-resource totals; used is 0 (checked above), so
  // its entire free capacity goes away.
  if (index_ != nullptr) {
    index_->free_vcpus -= free_vcpus();
    index_->free_vgpus -= free_vgpus();
  }
}

void Invoker::flush_warm_spans(TimeMs now) const {
  if (!warm_callback_) return;
  std::vector<FunctionId> functions;
  functions.reserve(warm_.size());
  for (const auto& [fn, _] : warm_) functions.push_back(fn);
  for (FunctionId fn : functions) {
    prune_expired(fn, now);  // reports expiries first
    auto it = warm_.find(fn);
    if (it == warm_.end()) continue;
    for (const WarmEntry& e : it->second) {
      warm_callback_(id_, fn, e.since, now, WarmEnd::kOpen);
    }
  }
}

std::vector<FunctionId> Invoker::warm_functions(TimeMs now) const {
  std::vector<FunctionId> functions;
  functions.reserve(warm_.size());
  for (const auto& [fn, _] : warm_) functions.push_back(fn);
  std::sort(functions.begin(), functions.end());
  std::erase_if(functions,
                [&](FunctionId fn) { return warm_count(fn, now) == 0; });
  return functions;
}

std::size_t Invoker::total_warm(TimeMs now) const {
  std::size_t total = 0;
  // Collect keys first: prune_expired may erase map entries while iterating.
  std::vector<FunctionId> functions;
  functions.reserve(warm_.size());
  for (const auto& [fn, _] : warm_) functions.push_back(fn);
  for (FunctionId fn : functions) total += warm_count(fn, now);
  return total;
}

}  // namespace esg::cluster
