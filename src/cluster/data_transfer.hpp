// Inter-function data-passing model. Communication between functions placed
// on the same invoker goes through the local file system; otherwise the
// output travels through remote storage (Section 3.4). The entry stage
// always fetches its input from the user-facing ingress (remote).
#pragma once

#include "common/types.hpp"

namespace esg::cluster {

struct DataTransferModel {
  double local_mb_per_ms = 2.0;    ///< ~2 GB/s effective local FS bandwidth
  double remote_mb_per_ms = 0.5;   ///< ~500 MB/s remote store over 10 GbE+
  TimeMs local_base_ms = 0.2;      ///< per-transfer local overhead
  TimeMs remote_base_ms = 3.0;     ///< per-transfer remote RTT + store latency

  /// Time to move `megabytes` of data, locally or remotely.
  [[nodiscard]] TimeMs transfer_ms(double megabytes, bool local) const {
    if (megabytes < 0.0) megabytes = 0.0;
    return local ? local_base_ms + megabytes / local_mb_per_ms
                 : remote_base_ms + megabytes / remote_mb_per_ms;
  }
};

}  // namespace esg::cluster
