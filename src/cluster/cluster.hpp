// The simulated cluster: a fixed set of homogeneous invokers plus the
// OpenWhisk-style home-invoker hash (Section 2: the controller picks an
// invoker from a hash of the function's namespace and action so future
// instances land on the same node and hit warm containers).
#pragma once

#include <cstddef>
#include <vector>

#include "cluster/data_transfer.hpp"
#include "cluster/invoker.hpp"
#include "common/types.hpp"

namespace esg::cluster {

class Cluster {
 public:
  /// Builds `node_count` identical invokers.
  Cluster(std::size_t node_count, NodeCapacity capacity = {});

  /// Heterogeneous fleet: one invoker per capacity entry (Appendix A notes
  /// the scheduling algorithms work unchanged on heterogeneous hardware).
  explicit Cluster(const std::vector<NodeCapacity>& capacities);

  [[nodiscard]] std::size_t size() const { return invokers_.size(); }
  [[nodiscard]] Invoker& invoker(InvokerId id);
  [[nodiscard]] const Invoker& invoker(InvokerId id) const;
  [[nodiscard]] std::vector<Invoker>& invokers() { return invokers_; }
  [[nodiscard]] const std::vector<Invoker>& invokers() const { return invokers_; }

  /// Deterministic home invoker for (app, function), mimicking OpenWhisk's
  /// namespace/action hash.
  [[nodiscard]] InvokerId home_invoker(AppId app, FunctionId function) const;

  /// Total free resources across the fleet. Retired nodes are not part of
  /// the fleet and contribute nothing; on a static fleet (no retired nodes)
  /// this is the plain sum over every invoker, dead or alive.
  [[nodiscard]] std::size_t total_free_vcpus() const;
  [[nodiscard]] std::size_t total_free_vgpus() const;

  /// Fleet-size census by lifecycle state (for stats and elastic policies).
  [[nodiscard]] std::size_t count_state(NodeState state) const;
  [[nodiscard]] std::size_t active_count() const {
    return count_state(NodeState::kActive);
  }
  [[nodiscard]] std::size_t warming_count() const {
    return count_state(NodeState::kWarming);
  }
  [[nodiscard]] std::size_t draining_count() const {
    return count_state(NodeState::kDraining);
  }
  [[nodiscard]] std::size_t retired_count() const {
    return count_state(NodeState::kRetired);
  }

  [[nodiscard]] const DataTransferModel& transfer_model() const { return transfer_; }
  void set_transfer_model(const DataTransferModel& m) { transfer_ = m; }

  /// Installs the keep-alive tracing observer on every invoker.
  void set_warm_span_callback(WarmSpanCallback callback) {
    for (auto& inv : invokers_) inv.set_warm_span_callback(callback);
  }

  /// End-of-run flush of still-open keep-alive windows (see Invoker).
  void flush_warm_spans(TimeMs now) const {
    for (const auto& inv : invokers_) inv.flush_warm_spans(now);
  }

 private:
  std::vector<Invoker> invokers_;
  DataTransferModel transfer_;
};

}  // namespace esg::cluster
