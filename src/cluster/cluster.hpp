// The simulated cluster: a fixed set of homogeneous invokers plus the
// OpenWhisk-style home-invoker hash (Section 2: the controller picks an
// invoker from a hash of the function's namespace and action so future
// instances land on the same node and hit warm containers).
#pragma once

#include <cstddef>
#include <memory>
#include <set>
#include <vector>

#include "cluster/cluster_index.hpp"
#include "cluster/data_transfer.hpp"
#include "cluster/invoker.hpp"
#include "common/types.hpp"

namespace esg::cluster {

class Cluster {
 public:
  /// Builds `node_count` identical invokers.
  Cluster(std::size_t node_count, NodeCapacity capacity = {});

  /// Heterogeneous fleet: one invoker per capacity entry (Appendix A notes
  /// the scheduling algorithms work unchanged on heterogeneous hardware).
  explicit Cluster(const std::vector<NodeCapacity>& capacities);

  // Invokers hold a raw pointer into the heap-allocated state index, so the
  // cluster can move (the allocation is stable) but must not be copied.
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;
  Cluster(Cluster&&) = default;
  Cluster& operator=(Cluster&&) = default;

  [[nodiscard]] std::size_t size() const { return invokers_.size(); }
  [[nodiscard]] Invoker& invoker(InvokerId id);
  [[nodiscard]] const Invoker& invoker(InvokerId id) const;
  [[nodiscard]] std::vector<Invoker>& invokers() { return invokers_; }
  [[nodiscard]] const std::vector<Invoker>& invokers() const { return invokers_; }

  /// Deterministic home invoker for (app, function), mimicking OpenWhisk's
  /// namespace/action hash.
  [[nodiscard]] InvokerId home_invoker(AppId app, FunctionId function) const;

  /// Total free resources across the fleet. Retired nodes are not part of
  /// the fleet and contribute nothing; on a static fleet (no retired nodes)
  /// this is the plain sum over every invoker, dead or alive. O(1): running
  /// sums maintained by Invoker hooks (DESIGN.md §15).
  [[nodiscard]] std::size_t total_free_vcpus() const {
    return index_->free_vcpus;
  }
  [[nodiscard]] std::size_t total_free_vgpus() const {
    return index_->free_vgpus;
  }

  /// Ascending-id set of invokers that *may* hold a warm container for
  /// `function` — a lazy superset (keep-alive expiry is evaluated lazily), so
  /// each candidate must be confirmed with Invoker::has_warm before use.
  /// Iterating this set in order reproduces the historical whole-fleet
  /// first-fit scan exactly. Never invalidated by drop_warm_candidate of a
  /// *different* id (std::set erase semantics).
  [[nodiscard]] const std::set<InvokerId>& warm_candidates(
      FunctionId function) const;

  /// Removes a candidate the caller has just observed with has_warm == false
  /// (it can only re-enter via another add_warm, which re-inserts it).
  void drop_warm_candidate(FunctionId function, InvokerId id) const;

  /// Cross-validates the incremental index against a full fleet scan:
  /// every invoker holding an unexpired warm container must appear in its
  /// function's candidate set, and the free-resource sums must match the
  /// O(n) recomputation. Throws via check() on violation (test hook for the
  /// crash/reclaim/drain/retire transitions).
  void check_index_invariants(TimeMs now) const;

  /// Fleet-size census by lifecycle state (for stats and elastic policies).
  [[nodiscard]] std::size_t count_state(NodeState state) const;
  [[nodiscard]] std::size_t active_count() const {
    return count_state(NodeState::kActive);
  }
  [[nodiscard]] std::size_t warming_count() const {
    return count_state(NodeState::kWarming);
  }
  [[nodiscard]] std::size_t draining_count() const {
    return count_state(NodeState::kDraining);
  }
  [[nodiscard]] std::size_t retired_count() const {
    return count_state(NodeState::kRetired);
  }

  [[nodiscard]] const DataTransferModel& transfer_model() const { return transfer_; }
  void set_transfer_model(const DataTransferModel& m) { transfer_ = m; }

  /// Installs the keep-alive tracing observer on every invoker.
  void set_warm_span_callback(WarmSpanCallback callback) {
    for (auto& inv : invokers_) inv.set_warm_span_callback(callback);
  }

  /// End-of-run flush of still-open keep-alive windows (see Invoker).
  void flush_warm_spans(TimeMs now) const {
    for (const auto& inv : invokers_) inv.flush_warm_spans(now);
  }

 private:
  void attach_index();

  std::vector<Invoker> invokers_;
  DataTransferModel transfer_;
  // Heap allocation keeps invoker back-pointers stable across cluster moves.
  // std::unique_ptr does not propagate const, so the lazy candidate cleanup
  // works from const queries.
  std::unique_ptr<ClusterStateIndex> index_;
};

}  // namespace esg::cluster
