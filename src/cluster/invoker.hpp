// One worker node ("Invoker" in OpenWhisk terms): a pool of vCPUs and vGPU
// slices plus a keep-alive pool of warm containers.
//
// Resource accounting: active tasks hold vCPUs/vGPUs for their whole
// occupancy (cold start + data transfer + execution). Idle warm containers
// hold no vCPU/vGPU — they are paused, keeping only the loaded model, which
// is what makes a subsequent start "warm". Warm entries expire after the
// keep-alive window (OpenWhisk's fixed 10 minutes, Section 2); expiry is
// evaluated lazily against the caller-provided current time, so this module
// has no dependency on the simulator.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "cluster/cluster_index.hpp"
#include "common/types.hpp"

namespace esg::cluster {

struct NodeCapacity {
  std::uint16_t vcpus = 16;  ///< testbed: 16 vCPUs per node (Section 4)
  std::uint16_t vgpus = 7;   ///< one A100 split into 7 MIG slices
};

inline constexpr TimeMs kKeepAliveMs = 10.0 * 60.0 * 1000.0;  // 10 minutes

/// How a warm container's keep-alive window ended (for tracing).
enum class WarmEnd : std::uint8_t {
  kAcquired,  ///< consumed by a dispatch (warm start)
  kExpired,   ///< keep-alive window ran out unused
  kOpen,      ///< still parked when the trace was flushed
  kCrashed,   ///< lost when the invoker crashed (fault injection)
  kDrained,   ///< released when the invoker left the fleet (scale-in/reclaim)
};

/// Fleet-membership lifecycle of a node, orthogonal to the crash-window
/// `alive()` flag (a node can be Active yet dead during a crash window).
/// Static fleets keep every node Active forever; the elastic layer walks
/// Retired -> Warming -> Active -> Draining -> Retired.
enum class NodeState : std::uint8_t {
  kActive,    ///< in the fleet, accepts placements and warm containers
  kWarming,   ///< acquired, paying provisioning lead time, not yet placeable
  kDraining,  ///< finishing in-flight work; accepts nothing new
  kRetired,   ///< not part of the fleet (released, reclaimed, or never acquired)
};

/// Observer invoked whenever a keep-alive window closes: (invoker, function,
/// window start, window end, how it ended). Lazily-expired entries are
/// reported when the expiry is observed, with the exact expiry time.
using WarmSpanCallback = std::function<void(InvokerId, FunctionId, TimeMs,
                                            TimeMs, WarmEnd)>;

class Invoker {
 public:
  Invoker(InvokerId id, NodeCapacity capacity)
      : id_(id), capacity_(capacity) {}

  [[nodiscard]] InvokerId id() const { return id_; }
  [[nodiscard]] NodeCapacity capacity() const { return capacity_; }
  [[nodiscard]] std::uint16_t free_vcpus() const {
    return static_cast<std::uint16_t>(capacity_.vcpus - used_vcpus_);
  }
  [[nodiscard]] std::uint16_t free_vgpus() const {
    return static_cast<std::uint16_t>(capacity_.vgpus - used_vgpus_);
  }
  [[nodiscard]] std::uint16_t used_vcpus() const { return used_vcpus_; }
  [[nodiscard]] std::uint16_t used_vgpus() const { return used_vgpus_; }

  [[nodiscard]] bool can_fit(std::uint16_t vcpus, std::uint16_t vgpus) const {
    return alive_ && state_ == NodeState::kActive && vcpus <= free_vcpus() &&
           vgpus <= free_vgpus();
  }

  /// False while a fault-injected crash window is open. A dead invoker fits
  /// nothing, parks no warm containers, and serves no warm start; its used
  /// vCPU/vGPU counters keep working so the controller can release the
  /// resources of the tasks it kills.
  [[nodiscard]] bool alive() const { return alive_; }

  /// Fleet-membership state; see NodeState. Static fleets stay kActive.
  [[nodiscard]] NodeState state() const { return state_; }

  /// True when new placements, prewarms, and provisioned containers may
  /// target this node: alive, Active, not draining or retired.
  [[nodiscard]] bool accepts_placements() const {
    return alive_ && state_ == NodeState::kActive;
  }

  /// Retired -> Warming: the node has been acquired and is paying its
  /// provisioning lead time. Throws std::logic_error from any other state.
  void begin_warming();

  /// Warming -> Active: provisioning finished, the node joins the fleet.
  void activate();

  /// Active|Warming -> Draining: stop accepting new placements; in-flight
  /// tasks keep their resources until they finish (or are reclaimed).
  void begin_drain();

  /// Draining|Warming -> Retired: the node leaves the fleet. Every parked
  /// warm container is released (reported as WarmEnd::kDrained). Requires
  /// used vCPUs/vGPUs == 0 — callers must have completed or failed all
  /// in-flight tasks first; the check is the no-leak invariant.
  void retire(TimeMs now);

  /// Crashes the node: drops every warm container (reported as
  /// WarmEnd::kCrashed) and marks the node dead. The caller is responsible
  /// for failing the tasks that were running here and releasing their
  /// resources.
  void crash(TimeMs now);

  /// Brings a crashed node back, alive and with an empty warm pool.
  void rejoin();

  /// Reserves resources for a task. Throws std::logic_error on over-commit.
  void allocate(std::uint16_t vcpus, std::uint16_t vgpus);
  /// Returns resources. Throws std::logic_error on under-flow.
  void release(std::uint16_t vcpus, std::uint16_t vgpus);

  /// Number of unexpired idle warm containers for `function` at `now`.
  [[nodiscard]] std::size_t warm_count(FunctionId function, TimeMs now) const;
  [[nodiscard]] bool has_warm(FunctionId function, TimeMs now) const {
    return warm_count(function, now) > 0;
  }

  /// Consumes one warm container (the one expiring soonest). Returns false
  /// if none is available — the caller then pays a cold start.
  bool acquire_warm(FunctionId function, TimeMs now);

  /// Parks a warm container that stays usable until now + keep_alive.
  void add_warm(FunctionId function, TimeMs now, TimeMs keep_alive = kKeepAliveMs);

  /// Total unexpired warm containers across functions (for reporting).
  [[nodiscard]] std::size_t total_warm(TimeMs now) const;

  /// Functions with at least one unexpired warm container at `now`, sorted
  /// (for the index invariant checker; prunes lazily like any warm query).
  [[nodiscard]] std::vector<FunctionId> warm_functions(TimeMs now) const;

  /// Installs the keep-alive tracing observer (empty = disabled).
  void set_warm_span_callback(WarmSpanCallback callback) {
    warm_callback_ = std::move(callback);
  }

  /// Reports every still-parked warm container as an open window ending at
  /// `now` (end-of-run trace flush). The containers stay usable.
  void flush_warm_spans(TimeMs now) const;

  /// Installs the shared cluster state index (see cluster_index.hpp). Called
  /// by Cluster; the pointer must outlive the invoker's mutations.
  void attach_index(ClusterStateIndex* index) { index_ = index; }

 private:
  struct WarmEntry {
    TimeMs expiry = 0.0;  ///< when the keep-alive window runs out
    TimeMs since = 0.0;   ///< when the container was parked
  };

  InvokerId id_;
  NodeCapacity capacity_;
  std::uint16_t used_vcpus_ = 0;
  std::uint16_t used_vgpus_ = 0;
  bool alive_ = true;
  NodeState state_ = NodeState::kActive;
  // function -> idle warm containers (unsorted, tiny lists).
  // Mutable: const queries prune expired entries lazily.
  mutable std::unordered_map<FunctionId, std::vector<WarmEntry>> warm_;
  WarmSpanCallback warm_callback_;
  ClusterStateIndex* index_ = nullptr;  // owned by Cluster; null when detached

  void prune_expired(FunctionId function, TimeMs now) const;
  void index_erase_warm();
};

}  // namespace esg::cluster
