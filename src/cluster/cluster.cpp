#include "cluster/cluster.hpp"

#include <stdexcept>

#include "common/check.hpp"

namespace esg::cluster {

Cluster::Cluster(std::size_t node_count, NodeCapacity capacity) {
  if (node_count == 0) {
    throw std::invalid_argument("Cluster: need at least one invoker");
  }
  invokers_.reserve(node_count);
  for (std::size_t i = 0; i < node_count; ++i) {
    invokers_.emplace_back(InvokerId(static_cast<std::uint32_t>(i)), capacity);
  }
  attach_index();
}

Cluster::Cluster(const std::vector<NodeCapacity>& capacities) {
  if (capacities.empty()) {
    throw std::invalid_argument("Cluster: need at least one invoker");
  }
  invokers_.reserve(capacities.size());
  for (std::size_t i = 0; i < capacities.size(); ++i) {
    invokers_.emplace_back(InvokerId(static_cast<std::uint32_t>(i)),
                           capacities[i]);
  }
  attach_index();
}

void Cluster::attach_index() {
  index_ = std::make_unique<ClusterStateIndex>();
  for (auto& inv : invokers_) {
    inv.attach_index(index_.get());
    // Every node starts Active with an empty warm pool: seed the totals.
    index_->free_vcpus += inv.free_vcpus();
    index_->free_vgpus += inv.free_vgpus();
  }
}

const std::set<InvokerId>& Cluster::warm_candidates(FunctionId function) const {
  static const std::set<InvokerId> kEmpty;
  const auto it = index_->warm.find(function);
  return it == index_->warm.end() ? kEmpty : it->second;
}

void Cluster::drop_warm_candidate(FunctionId function, InvokerId id) const {
  const auto it = index_->warm.find(function);
  // Keep emptied sets alive: callers iterate warm_candidates() while
  // dropping, and erasing the set object would invalidate their range.
  if (it != index_->warm.end()) it->second.erase(id);
}

void Cluster::check_index_invariants(TimeMs now) const {
  std::size_t scan_vcpus = 0;
  std::size_t scan_vgpus = 0;
  for (const auto& inv : invokers_) {
    if (inv.state() != NodeState::kRetired) {
      scan_vcpus += inv.free_vcpus();
      scan_vgpus += inv.free_vgpus();
    }
  }
  check(scan_vcpus == index_->free_vcpus,
        "ClusterStateIndex: free_vcpus diverged from the fleet scan");
  check(scan_vgpus == index_->free_vgpus,
        "ClusterStateIndex: free_vgpus diverged from the fleet scan");
  // Superset property: any node holding an unexpired warm container must be
  // a candidate for that function. (Warm queries prune lazily, so this scan
  // may shrink warm pools — the same observation a controller query makes.)
  for (const auto& inv : invokers_) {
    for (FunctionId fn : inv.warm_functions(now)) {
      const auto it = index_->warm.find(fn);
      check(it != index_->warm.end() && it->second.count(inv.id()) == 1,
            "ClusterStateIndex: warm invoker missing from candidate set");
    }
  }
}

Invoker& Cluster::invoker(InvokerId id) {
  if (id.get() >= invokers_.size()) {
    throw std::out_of_range("Cluster::invoker: bad id");
  }
  return invokers_[id.get()];
}

const Invoker& Cluster::invoker(InvokerId id) const {
  if (id.get() >= invokers_.size()) {
    throw std::out_of_range("Cluster::invoker: bad id");
  }
  return invokers_[id.get()];
}

InvokerId Cluster::home_invoker(AppId app, FunctionId function) const {
  // Splitmix-style avalanche of the (app, function) pair; stable across runs.
  std::uint64_t h = (std::uint64_t{app.get()} << 32) | function.get();
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
  h ^= h >> 31;
  return InvokerId(static_cast<std::uint32_t>(h % invokers_.size()));
}

std::size_t Cluster::count_state(NodeState state) const {
  std::size_t count = 0;
  for (const auto& inv : invokers_) count += inv.state() == state ? 1 : 0;
  return count;
}

}  // namespace esg::cluster
