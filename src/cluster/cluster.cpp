#include "cluster/cluster.hpp"

#include <stdexcept>

namespace esg::cluster {

Cluster::Cluster(std::size_t node_count, NodeCapacity capacity) {
  if (node_count == 0) {
    throw std::invalid_argument("Cluster: need at least one invoker");
  }
  invokers_.reserve(node_count);
  for (std::size_t i = 0; i < node_count; ++i) {
    invokers_.emplace_back(InvokerId(static_cast<std::uint32_t>(i)), capacity);
  }
}

Cluster::Cluster(const std::vector<NodeCapacity>& capacities) {
  if (capacities.empty()) {
    throw std::invalid_argument("Cluster: need at least one invoker");
  }
  invokers_.reserve(capacities.size());
  for (std::size_t i = 0; i < capacities.size(); ++i) {
    invokers_.emplace_back(InvokerId(static_cast<std::uint32_t>(i)),
                           capacities[i]);
  }
}

Invoker& Cluster::invoker(InvokerId id) {
  if (id.get() >= invokers_.size()) {
    throw std::out_of_range("Cluster::invoker: bad id");
  }
  return invokers_[id.get()];
}

const Invoker& Cluster::invoker(InvokerId id) const {
  if (id.get() >= invokers_.size()) {
    throw std::out_of_range("Cluster::invoker: bad id");
  }
  return invokers_[id.get()];
}

InvokerId Cluster::home_invoker(AppId app, FunctionId function) const {
  // Splitmix-style avalanche of the (app, function) pair; stable across runs.
  std::uint64_t h = (std::uint64_t{app.get()} << 32) | function.get();
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
  h ^= h >> 31;
  return InvokerId(static_cast<std::uint32_t>(h % invokers_.size()));
}

std::size_t Cluster::total_free_vcpus() const {
  std::size_t total = 0;
  for (const auto& inv : invokers_) {
    if (inv.state() == NodeState::kRetired) continue;
    total += inv.free_vcpus();
  }
  return total;
}

std::size_t Cluster::total_free_vgpus() const {
  std::size_t total = 0;
  for (const auto& inv : invokers_) {
    if (inv.state() == NodeState::kRetired) continue;
    total += inv.free_vgpus();
  }
  return total;
}

std::size_t Cluster::count_state(NodeState state) const {
  std::size_t count = 0;
  for (const auto& inv : invokers_) count += inv.state() == state ? 1 : 0;
  return count;
}

}  // namespace esg::cluster
