// Incremental cluster state index (DESIGN.md §15): the structures that let
// the controller's hot path stop rescanning every node per queued request.
//
// Owned by Cluster (behind a stable heap allocation so the cluster can move)
// and maintained by Invoker hooks:
//
//  - `warm` maps a function to the ascending-id set of invokers that *may*
//    hold a warm container for it. It is a lazy superset: add_warm inserts
//    eagerly, but keep-alive expiry is evaluated lazily, so a candidate must
//    be confirmed with Invoker::has_warm before use. Once has_warm observes
//    false the candidate can be dropped — a node only re-enters via another
//    add_warm, which re-inserts it. Crash and retire erase their node
//    eagerly (they clear the whole warm pool anyway).
//
//  - `free_vcpus` / `free_vgpus` mirror Cluster::total_free_* as running
//    sums over non-retired nodes, updated on allocate/release and on the
//    retired-boundary transitions (retire, begin_warming).
#pragma once

#include <cstddef>
#include <map>
#include <set>

#include "common/types.hpp"

namespace esg::cluster {

struct ClusterStateIndex {
  std::map<FunctionId, std::set<InvokerId>> warm;
  std::size_t free_vcpus = 0;
  std::size_t free_vgpus = 0;
};

}  // namespace esg::cluster
