// The ESG scheduling strategy (Section 3): optimality-guided adaptive
// scheduling with sharable GPUs as a first-order factor.
//
//  - plan(): dominator-based SLO distribution assigns each function group a
//    share of the end-to-end SLO; ESG_1Q searches the group's configuration
//    space with dual-blade pruning under the *remaining* budget, so every
//    stage dispatch re-plans against the current system state (the paper's
//    key difference from Orion/Aquatope).
//  - place(): ESG_Dispatch — predecessor/home invoker first for data
//    locality, then warm invokers, then the emptiest cold invoker.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "core/esg_1q.hpp"
#include "core/slo_distribution.hpp"
#include "platform/scheduler.hpp"
#include "profile/profile_table.hpp"
#include "workload/dag.hpp"

namespace esg::core {

class EsgScheduler : public platform::Scheduler {
 public:
  struct Options {
    std::size_t k = 5;              ///< configPQ length (Section 5.4 default)
    std::size_t max_group_size = 3; ///< function-group cap (Section 5.4 default)
    OverheadModel overhead;
    /// Fraction of a group's latency slack the scheduler is willing to spend
    /// waiting for a larger (cheaper) batch to form.
    double defer_safety = 0.5;
    /// Data-passing model used to reserve budget for input staging (entry
    /// stages fetch remotely; later stages are expected to be local thanks
    /// to ESG_Dispatch).
    cluster::DataTransferModel transfer;
    /// Headroom reserved for execution-time variation: the search targets
    /// (1 - noise_margin) of the distributed budget so that a noisy run
    /// still lands under the SLO.
    double noise_margin = 0.08;
  };

  /// `apps` and `profiles` must outlive the scheduler. The SLO distribution
  /// of every app is computed once here (it depends only on the profiles).
  EsgScheduler(const std::vector<workload::AppDag>& apps,
               const profile::ProfileSet& profiles, Options options);
  EsgScheduler(const std::vector<workload::AppDag>& apps,
               const profile::ProfileSet& profiles)
      : EsgScheduler(apps, profiles, Options{}) {}

  [[nodiscard]] std::string_view name() const override { return "ESG"; }

  platform::PlanResult plan(const platform::QueueView& view) override;

  std::optional<InvokerId> place(const platform::PlacementContext& ctx,
                                 const cluster::Cluster& cluster) override;

  /// Dominator-based per-node SLO shares (Section 3.3), consumed by the
  /// controller's kBudgetPlan trace instants.
  [[nodiscard]] std::vector<double> planned_stage_fractions(
      AppId app) const override;

  /// Fault recovery feedback: each retry of one of the app's stages bumps a
  /// pressure counter that temporarily widens the noise margin (capped),
  /// so re-planned budgets leave room for another failure. The pressure
  /// halves on every subsequent plan — at zero it is bit-identical to the
  /// plain margin, keeping fault-free runs untouched.
  void on_stage_retry(AppId app, workload::NodeIndex stage,
                      TimeMs now_ms) override;

  [[nodiscard]] const SloDistribution& distribution(AppId app) const;
  [[nodiscard]] const Options& options() const { return options_; }

  /// Cumulative search statistics (for the overhead analyses).
  [[nodiscard]] const SearchStats& cumulative_stats() const { return stats_; }

 private:
  const profile::ProfileSet& profiles_;
  Options options_;
  std::unordered_map<AppId, SloDistribution> distributions_;
  std::unordered_map<AppId, const workload::AppDag*> dags_;
  SearchStats stats_;
  /// Per-app fault pressure (see on_stage_retry); absent = 0.
  std::unordered_map<AppId, double> retry_pressure_;

  /// The functions of `view`'s group from the current stage onward.
  [[nodiscard]] std::vector<workload::NodeIndex> remaining_group_stages(
      const platform::QueueView& view) const;
};

}  // namespace esg::core
