// ESG_1Q (Section 3.3, Algorithm 1): finds the K cheapest configuration
// paths through a linear sequence of functions that complete within a target
// latency. Best-first, stage-ordered search with dual-blade pruning:
//
//   tLow       — optimistic completion time of every path prefixed by the
//                partial path; since each stage's configurations are sorted
//                by latency, tLow >= G_SLO prunes the rest of the stage.
//   rscLow     — optimistic per-job cost of every extension; pruned against
//                the K-th best known optimistic completion (minRSC[K-1]).
//   rscFastest — the partial path's cost plus the cost of finishing as fast
//                as possible; feeds minRSC, tightening the cost blade.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "profile/profile_table.hpp"

namespace esg::core {

/// One stage of the searched sequence.
struct StageInput {
  const profile::ProfileTable* table = nullptr;
  /// Largest admissible batch for this stage (jobs actually queued);
  /// 0 = unconstrained.
  std::uint16_t batch_cap = 0;
};

/// A full configuration path: one profile entry per stage.
struct SearchPath {
  std::vector<profile::ProfileEntry> entries;
  TimeMs total_latency_ms = 0.0;
  Usd total_per_job_cost = 0.0;
};

struct SearchStats {
  std::size_t nodes_expanded = 0;   ///< configurations examined
  std::size_t pruned_time = 0;      ///< stage break-offs via tLow
  std::size_t pruned_cost = 0;      ///< skips via rscLow
  std::size_t paths_kept = 0;       ///< surviving partial paths (max over stages)
};

struct SearchResult {
  /// Up to K full paths meeting the target, cheapest (per-job cost) first —
  /// the configuration priority queue of Section 3.1.
  std::vector<SearchPath> config_pq;
  /// False when no path meets the target; config_pq then holds the single
  /// fastest path as a best-effort fallback.
  bool met_slo = false;
  SearchStats stats;
};

struct SearchOptions {
  std::size_t k = 5;  ///< solutions kept (paper default, Section 5.4)
  /// Hard cap on surviving partial paths per stage (memory guard; the
  /// dual-blade pruning keeps real workloads far below it). Excess paths —
  /// the costliest ones — are dropped.
  std::size_t max_paths = 200'000;
};

/// Runs ESG_1Q over `stages` with target latency `g_slo_ms`.
[[nodiscard]] SearchResult esg_1q(std::span<const StageInput> stages,
                                  TimeMs g_slo_ms, const SearchOptions& options = {});

/// Deterministic model of the scheduling latency a search of `nodes_expanded`
/// configurations costs (DESIGN.md, substitutions): wall-clock charging would
/// break replay determinism, so simulated runs charge this instead.
struct OverheadModel {
  TimeMs base_ms = 0.2;      ///< fixed per-invocation bookkeeping
  double per_node_us = 0.43; ///< per examined configuration (calibrated to
                             ///< the paper's 7258 ms brute force over 256^3)

  [[nodiscard]] TimeMs overhead_ms(std::size_t nodes_expanded) const {
    return base_ms + static_cast<double>(nodes_expanded) * per_node_us / 1000.0;
  }
};

}  // namespace esg::core
