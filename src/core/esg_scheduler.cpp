#include "core/esg_scheduler.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/check.hpp"

namespace esg::core {

namespace {

/// Floor for the remaining budget so a late request still gets a sane
/// (fastest-path) search instead of a degenerate zero target.
constexpr TimeMs kMinBudgetMs = 1.0;

}  // namespace

EsgScheduler::EsgScheduler(const std::vector<workload::AppDag>& apps,
                           const profile::ProfileSet& profiles, Options options)
    : profiles_(profiles), options_(options) {
  if (options_.k == 0) throw std::invalid_argument("EsgScheduler: k must be > 0");
  for (const auto& app : apps) {
    dags_.emplace(app.id(), &app);
    distributions_.emplace(
        app.id(), SloDistribution(app, profiles, options_.max_group_size));
  }
}

const SloDistribution& EsgScheduler::distribution(AppId app) const {
  auto it = distributions_.find(app);
  if (it == distributions_.end()) {
    throw std::out_of_range("EsgScheduler: unknown app");
  }
  return it->second;
}

std::vector<workload::NodeIndex> EsgScheduler::remaining_group_stages(
    const platform::QueueView& view) const {
  const SloDistribution& dist = distribution(view.app);
  const auto& group = dist.groups()[dist.group_of(view.stage)];
  const auto pos = std::find(group.nodes.begin(), group.nodes.end(), view.stage);
  check(pos != group.nodes.end(), "stage missing from its own group");
  return {pos, group.nodes.end()};
}

platform::PlanResult EsgScheduler::plan(const platform::QueueView& view) {
  check(view.dag != nullptr && view.profiles != nullptr, "plan: null view");
  const SloDistribution& dist = distribution(view.app);
  const auto stages_idx = remaining_group_stages(view);

  // Budget renormalisation (the adaptive step): whatever is left of the
  // end-to-end SLO is split between this group's remaining stages and the
  // rest of the workflow in proportion to their distributed shares.
  const TimeMs budget =
      std::max(kMinBudgetMs, view.slo_ms - view.oldest_elapsed_ms);
  double group_share = 0.0;
  TimeMs transfer_est = 0.0;
  for (workload::NodeIndex s : stages_idx) {
    group_share += dist.node_fraction(s);
    const auto& spec = profiles_.table(view.dag->node(s).function).spec();
    // Entry stage fetches from the ingress store; later stages should hit
    // the local file system under ESG_Dispatch's locality policy.
    transfer_est +=
        options_.transfer.transfer_ms(spec.input_mb, s != view.dag->entry());
  }
  const double remaining_share = dist.remaining_fraction(view.stage);
  check(remaining_share > 0.0, "plan: zero remaining share");
  const TimeMs raw_target =
      budget * std::min(1.0, group_share / remaining_share) - transfer_est;
  // Fault pressure widens the margin (capped) so a re-planned stage leaves
  // headroom for another failed attempt; it halves on each plan so a burst
  // does not permanently pessimise the app. At zero pressure the expression
  // is bit-identical to the plain margin (x * 1.0 == x).
  double pressure = 0.0;
  if (auto pit = retry_pressure_.find(view.app); pit != retry_pressure_.end()) {
    pressure = pit->second;
    pit->second *= 0.5;
  }
  const double margin = std::min(0.5, options_.noise_margin * (1.0 + pressure));
  const TimeMs margined_target = raw_target * (1.0 - margin);

  // Three regimes: optimise with full safety margin when it is affordable;
  // drop the noise margin and race when only the raw budget fits (a noisy
  // run may still land under the SLO); nothing else can meet the SLO.
  TimeMs fastest_sum = 0.0;
  for (workload::NodeIndex s : stages_idx) {
    fastest_sum += profiles_.table(view.dag->node(s).function).min_latency();
  }
  // (If even the raw target is below the fastest sum, the search comes back
  // empty and the drain fallback below takes over.)
  const TimeMs g_slo = margined_target > fastest_sum
                           ? margined_target
                           : std::max(kMinBudgetMs, raw_target);

  std::vector<StageInput> stages;
  stages.reserve(stages_idx.size());
  for (workload::NodeIndex s : stages_idx) {
    StageInput in;
    in.table = &profiles_.table(view.dag->node(s).function);
    in.batch_cap = 0;  // first pass: unconstrained (would waiting pay off?)
    stages.push_back(in);
  }

  SearchOptions search_options;
  search_options.k = options_.k;

  // Pass 1 — unconstrained batch: reveals the batch the group *wants*.
  SearchResult unconstrained = esg_1q(stages, g_slo, search_options);
  std::size_t nodes = unconstrained.stats.nodes_expanded;

  platform::PlanResult plan;
  plan.planned_budget_ms = g_slo;
  const auto& want = unconstrained.config_pq.front();
  const std::uint16_t desired_batch = want.entries.front().config.batch;

  if (unconstrained.met_slo && desired_batch > view.queue_length) {
    // A larger batch would be cheaper and still meet the target. Wait for it
    // while slack allows; the head-of-queue wait already consumed part of it.
    const TimeMs slack = std::max(0.0, g_slo - want.total_latency_ms);
    bool defer_ok = view.head_wait_ms < options_.defer_safety * slack;
    if (defer_ok && view.forecast_rate_per_s >= 0.0) {
      // Foresight: deferring only pays if the missing batch-mates actually
      // arrive inside the slack. At the forecast rate the gap takes fill_ms
      // to close — when that blows the defer window (in particular when the
      // forecast says nothing is coming), dispatch now instead of waiting
      // for a batch that will not form.
      const double missing = static_cast<double>(desired_batch) -
                             static_cast<double>(view.queue_length);
      const TimeMs fill_ms =
          view.forecast_rate_per_s > 0.0
              ? 1000.0 * missing / view.forecast_rate_per_s
              : kNoTime;
      defer_ok = view.head_wait_ms + fill_ms < options_.defer_safety * slack;
    }
    if (defer_ok) {
      plan.defer = true;
      plan.overhead_ms = options_.overhead.overhead_ms(nodes);
      stats_.nodes_expanded += nodes;
      return plan;
    }
  }

  // Budget already blown (no path can meet the target): racing the fastest
  // configuration would burn 8 vCPUs per task for a request that misses
  // anyway and starve everyone else's placements. Drain cost-efficiently
  // instead: the cheapest per-job configurations of the current stage.
  if (!unconstrained.met_slo) {
    const auto& table = profiles_.table(view.function);
    // Batch cap 8: beyond that the marginal per-job saving is small while
    // the task latency (which delays every successor stage) keeps growing.
    std::vector<profile::ProfileEntry> drain = table.entries_with_batch_at_most(
        static_cast<std::uint16_t>(std::min<std::size_t>(view.queue_length, 8)));
    // Two drain flavours. A request that still has end-to-end budget and a
    // shallow queue (the target was merely unreachable after margins, not a
    // backlog symptom) races lean — cost x latency keeps it brisk and it
    // may still land under the SLO. Under backlog, or once the request has
    // missed anyway, maximise throughput per dollar so it stops taxing
    // everyone else; those drains also stay CPU-lean (c <= 4), vCPUs being
    // the cluster's scarcest aggregate resource under backlog.
    const bool still_in_budget = view.oldest_elapsed_ms < view.slo_ms &&
                                 view.head_wait_ms < 0.25 * view.slo_ms;
    if (!still_in_budget) {
      std::erase_if(drain, [](const profile::ProfileEntry& e) {
        return e.config.vcpus > 4;
      });
    }
    std::sort(drain.begin(), drain.end(),
              [still_in_budget](const profile::ProfileEntry& a,
                                const profile::ProfileEntry& b) {
                const double pa =
                    still_in_budget ? a.per_job_cost * a.latency_ms : a.per_job_cost;
                const double pb =
                    still_in_budget ? b.per_job_cost * b.latency_ms : b.per_job_cost;
                if (pa != pb) return pa < pb;
                return a.latency_ms < b.latency_ms;
              });
    for (const auto& e : drain) {
      plan.candidates.push_back(e.config);
      if (plan.candidates.size() >= options_.k) break;
    }
    plan.overhead_ms = options_.overhead.overhead_ms(nodes);
    stats_.nodes_expanded += nodes;
    return plan;
  }

  // Pass 2 — restrict the dispatching stage to the jobs actually queued.
  SearchResult result;
  if (desired_batch <= view.queue_length) {
    result = std::move(unconstrained);
  } else {
    stages.front().batch_cap =
        static_cast<std::uint16_t>(std::min<std::size_t>(view.queue_length, 0xffff));
    result = esg_1q(stages, g_slo, search_options);
    nodes += result.stats.nodes_expanded;
  }

  // The configPQ: the first-stage configuration of each of the K cheapest
  // paths, deduplicated, cheapest path first.
  for (const SearchPath& path : result.config_pq) {
    const profile::Config c = path.entries.front().config;
    if (c.batch > view.queue_length) continue;
    if (std::find(plan.candidates.begin(), plan.candidates.end(), c) ==
        plan.candidates.end()) {
      plan.candidates.push_back(c);
    }
  }
  plan.overhead_ms = options_.overhead.overhead_ms(nodes);
  stats_.nodes_expanded += nodes;
  stats_.pruned_time += result.stats.pruned_time;
  stats_.pruned_cost += result.stats.pruned_cost;
  return plan;
}

std::vector<double> EsgScheduler::planned_stage_fractions(AppId app) const {
  const SloDistribution& dist = distribution(app);
  const auto dag_it = dags_.find(app);
  check(dag_it != dags_.end(), "planned_stage_fractions: unknown app");
  std::vector<double> fractions(dag_it->second->size(), 0.0);
  for (workload::NodeIndex node = 0; node < fractions.size(); ++node) {
    fractions[node] = dist.node_fraction(node);
  }
  return fractions;
}

void EsgScheduler::on_stage_retry(AppId app, workload::NodeIndex stage,
                                  TimeMs now_ms) {
  (void)stage;
  (void)now_ms;
  double& pressure = retry_pressure_[app];
  pressure = std::min(4.0, pressure + 1.0);
}

std::optional<InvokerId> EsgScheduler::place(const platform::PlacementContext& ctx,
                                             const cluster::Cluster& cluster) {
  return platform::locality_first_place(ctx, cluster);
}

}  // namespace esg::core
