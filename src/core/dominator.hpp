// Dominator tree of a single-source DAG, built with the iterative
// Cooper–Harvey–Kennedy algorithm over a reverse post-order. This is the
// "traditional compiler-based code analysis" step (Section 3.3) that the
// dominator-based SLO distribution builds on.
#pragma once

#include <vector>

#include "workload/dag.hpp"

namespace esg::core {

class DominatorTree {
 public:
  explicit DominatorTree(const workload::AppDag& dag);

  /// Immediate dominator; idom(entry) == entry.
  [[nodiscard]] workload::NodeIndex idom(workload::NodeIndex n) const {
    return idom_.at(n);
  }

  /// Children of `n` in the dominator tree (entry is not its own child).
  [[nodiscard]] const std::vector<workload::NodeIndex>& children(
      workload::NodeIndex n) const {
    return children_.at(n);
  }

  /// True if `a` dominates `b` (every node dominates itself).
  [[nodiscard]] bool dominates(workload::NodeIndex a, workload::NodeIndex b) const;

  [[nodiscard]] std::size_t size() const { return idom_.size(); }

 private:
  std::vector<workload::NodeIndex> idom_;
  std::vector<std::vector<workload::NodeIndex>> children_;
  std::vector<std::size_t> rpo_number_;  // reverse post-order index
};

}  // namespace esg::core
