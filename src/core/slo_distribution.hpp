// Dominator-based SLO distribution (Section 3.3).
//
// The reduction-based hierarchical method: build the dominator tree, label
// every node with its average normalized length (ANL), reduce parallel
// branches bottom-up into pseudo-nodes whose ANL is the maximum branch sum,
// partition the resulting chains into groups of at most `max_group_size`
// consecutive functions (reduced pseudo-nodes stay alone), and finally
// distribute the end-to-end SLO to the groups proportionally to their ANL —
// reversing the reduction so every branch of a reduced node receives that
// node's full quota (branches run concurrently).
//
// ESG_1Q is then run per group instead of per whole application, which is
// what keeps the scheduler scalable for long pipelines.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "profile/profile_table.hpp"
#include "workload/dag.hpp"

namespace esg::core {

/// ANL of every node: for each latency rank r, the node's latency at rank r
/// divided by the sum of all the app's function latencies at rank r,
/// averaged over ranks (shorter config lists are padded with their last
/// entry). This follows the paper's average_c( t_fi(c) / sum_j t_fj(c) )
/// with configurations aligned by latency rank.
[[nodiscard]] std::vector<double> average_normalized_lengths(
    const workload::AppDag& dag, const profile::ProfileSet& profiles);

class SloDistribution {
 public:
  struct Group {
    /// Consecutive DAG stages forming a linear sub-pipeline, in execution
    /// order. Each original node appears in exactly one group.
    std::vector<workload::NodeIndex> nodes;
    /// Share of the end-to-end SLO assigned to this group. Shares along any
    /// root-to-sink path sum to 1; parallel branches each carry their
    /// reduced node's full share.
    double fraction = 0.0;
  };

  SloDistribution(const workload::AppDag& dag,
                  const profile::ProfileSet& profiles,
                  std::size_t max_group_size);

  [[nodiscard]] std::span<const Group> groups() const { return groups_; }
  [[nodiscard]] std::size_t group_of(workload::NodeIndex node) const;
  /// The node's individual share: its group's fraction split by ANL.
  [[nodiscard]] double node_fraction(workload::NodeIndex node) const;
  /// Critical-path share from `node` (inclusive) to the sinks; used to
  /// renormalise the remaining budget when re-planning mid-workflow.
  [[nodiscard]] double remaining_fraction(workload::NodeIndex node) const;
  [[nodiscard]] const std::vector<double>& anl() const { return anl_; }

 private:
  std::vector<Group> groups_;
  std::vector<std::size_t> group_index_;     // node -> group
  std::vector<double> node_fraction_;        // node -> share
  std::vector<double> remaining_fraction_;   // node -> critical-path share
  std::vector<double> anl_;
};

}  // namespace esg::core
