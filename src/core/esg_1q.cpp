#include "core/esg_1q.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "common/check.hpp"

namespace esg::core {

namespace {

using profile::ProfileEntry;

/// Sorted (ascending) list of at most K values; used as minRSC.
class KBest {
 public:
  explicit KBest(std::size_t k) : k_(k) {}

  [[nodiscard]] bool full() const { return values_.size() == k_; }
  [[nodiscard]] Usd worst() const { return values_.back(); }

  /// True if a candidate with optimistic cost `rsc_low` can still matter.
  [[nodiscard]] bool admits(Usd rsc_low) const {
    return !full() || rsc_low < worst();
  }

  void insert(Usd rsc_fastest) {
    auto pos = std::upper_bound(values_.begin(), values_.end(), rsc_fastest);
    values_.insert(pos, rsc_fastest);
    if (values_.size() > k_) values_.pop_back();
  }

  void reset() { values_.clear(); }

 private:
  std::size_t k_;
  std::vector<Usd> values_;
};

struct Partial {
  std::vector<const ProfileEntry*> entries;
  TimeMs latency_ms = 0.0;
  Usd cost = 0.0;
};

SearchPath to_search_path(const Partial& p) {
  SearchPath out;
  out.entries.reserve(p.entries.size());
  for (const ProfileEntry* e : p.entries) out.entries.push_back(*e);
  out.total_latency_ms = p.latency_ms;
  out.total_per_job_cost = p.cost;
  return out;
}

}  // namespace

SearchResult esg_1q(std::span<const StageInput> stages, TimeMs g_slo_ms,
                    const SearchOptions& options) {
  if (stages.empty()) throw std::invalid_argument("esg_1q: no stages");
  if (options.k == 0) throw std::invalid_argument("esg_1q: k must be > 0");
  const std::size_t n = stages.size();

  // Per-stage config lists (latency-ascending), restricted by batch caps.
  std::vector<std::vector<ProfileEntry>> lists(n);
  for (std::size_t i = 0; i < n; ++i) {
    check(stages[i].table != nullptr, "esg_1q: null profile table");
    if (stages[i].batch_cap == 0) {
      const auto span = stages[i].table->entries();
      lists[i].assign(span.begin(), span.end());
    } else {
      lists[i] = stages[i].table->entries_with_batch_at_most(stages[i].batch_cap);
    }
    if (lists[i].empty()) {
      throw std::invalid_argument("esg_1q: a stage has no admissible config");
    }
  }

  // Suffix bounds over stages i..n-1.
  std::vector<TimeMs> suf_min_lat(n + 1, 0.0);
  std::vector<Usd> suf_min_cost(n + 1, 0.0);
  std::vector<Usd> suf_fast_cost(n + 1, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    TimeMs min_lat = std::numeric_limits<TimeMs>::infinity();
    Usd min_cost = std::numeric_limits<Usd>::infinity();
    TimeMs fastest_lat = std::numeric_limits<TimeMs>::infinity();
    Usd fastest_cost = 0.0;
    for (const auto& e : lists[i]) {
      min_lat = std::min(min_lat, e.latency_ms);
      min_cost = std::min(min_cost, e.per_job_cost);
      if (e.latency_ms < fastest_lat) {
        fastest_lat = e.latency_ms;
        fastest_cost = e.per_job_cost;
      }
    }
    suf_min_lat[i] = min_lat + suf_min_lat[i + 1];
    suf_min_cost[i] = min_cost + suf_min_cost[i + 1];
    suf_fast_cost[i] = fastest_cost + suf_fast_cost[i + 1];
  }

  SearchResult result;
  SearchStats& stats = result.stats;
  KBest min_rsc(options.k);

  std::vector<Partial> paths;
  paths.push_back(Partial{});  // the empty prefix

  for (std::size_t i = 0; i < n; ++i) {
    min_rsc.reset();
    std::vector<Partial> next;
    // Best-first: cheaper prefixes first tighten minRSC sooner.
    std::sort(paths.begin(), paths.end(),
              [](const Partial& a, const Partial& b) { return a.cost < b.cost; });
    for (const Partial& path : paths) {
      for (const ProfileEntry& e : lists[i]) {
        ++stats.nodes_expanded;
        const TimeMs t_low = path.latency_ms + e.latency_ms + suf_min_lat[i + 1];
        if (t_low >= g_slo_ms) {
          ++stats.pruned_time;
          break;  // the list is latency-sorted: everything after is worse
        }
        const Usd rsc_low = path.cost + e.per_job_cost + suf_min_cost[i + 1];
        if (!min_rsc.admits(rsc_low)) {
          ++stats.pruned_cost;
          continue;
        }
        const Usd rsc_fastest = path.cost + e.per_job_cost + suf_fast_cost[i + 1];
        min_rsc.insert(rsc_fastest);

        Partial extended;
        extended.entries = path.entries;
        extended.entries.push_back(&lists[i][&e - lists[i].data()]);
        extended.latency_ms = path.latency_ms + e.latency_ms;
        extended.cost = path.cost + e.per_job_cost;
        next.push_back(std::move(extended));
      }
    }
    if (next.size() > options.max_paths) {
      std::nth_element(next.begin(), next.begin() + options.max_paths, next.end(),
                       [](const Partial& a, const Partial& b) {
                         return a.cost < b.cost;
                       });
      next.resize(options.max_paths);
    }
    stats.paths_kept = std::max(stats.paths_kept, next.size());
    paths = std::move(next);
    if (paths.empty()) break;  // nothing feasible
  }

  if (!paths.empty()) {
    std::sort(paths.begin(), paths.end(), [](const Partial& a, const Partial& b) {
      if (a.cost != b.cost) return a.cost < b.cost;
      return a.latency_ms < b.latency_ms;
    });
    const std::size_t keep = std::min(options.k, paths.size());
    result.config_pq.reserve(keep);
    for (std::size_t i = 0; i < keep; ++i) {
      result.config_pq.push_back(to_search_path(paths[i]));
    }
    result.met_slo = true;
    return result;
  }

  // Nothing meets the target: fall back to the fastest path so the caller
  // can still make best-effort progress.
  SearchPath fastest;
  for (std::size_t i = 0; i < n; ++i) {
    const auto best = std::min_element(
        lists[i].begin(), lists[i].end(),
        [](const ProfileEntry& a, const ProfileEntry& b) {
          if (a.latency_ms != b.latency_ms) return a.latency_ms < b.latency_ms;
          return a.per_job_cost < b.per_job_cost;
        });
    fastest.entries.push_back(*best);
    fastest.total_latency_ms += best->latency_ms;
    fastest.total_per_job_cost += best->per_job_cost;
  }
  result.config_pq.push_back(std::move(fastest));
  result.met_slo = false;
  return result;
}

}  // namespace esg::core
