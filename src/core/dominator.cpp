#include "core/dominator.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/check.hpp"

namespace esg::core {

using workload::NodeIndex;

DominatorTree::DominatorTree(const workload::AppDag& dag) {
  dag.validate();
  const std::size_t n = dag.size();

  // Reverse post-order from the entry.
  std::vector<NodeIndex> post;
  post.reserve(n);
  std::vector<char> visited(n, 0);
  std::vector<std::pair<NodeIndex, std::size_t>> stack;  // (node, child cursor)
  stack.emplace_back(dag.entry(), 0);
  visited[dag.entry()] = 1;
  while (!stack.empty()) {
    auto& [u, cursor] = stack.back();
    const auto& succ = dag.node(u).successors;
    if (cursor < succ.size()) {
      const NodeIndex v = succ[cursor++];
      if (!visited[v]) {
        visited[v] = 1;
        stack.emplace_back(v, 0);
      }
    } else {
      post.push_back(u);
      stack.pop_back();
    }
  }
  check(post.size() == n, "DominatorTree: DAG not fully reachable");

  std::vector<NodeIndex> rpo(post.rbegin(), post.rend());
  rpo_number_.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) rpo_number_[rpo[i]] = i;

  constexpr NodeIndex kUndefined = static_cast<NodeIndex>(-1);
  idom_.assign(n, kUndefined);
  idom_[dag.entry()] = dag.entry();

  auto intersect = [&](NodeIndex a, NodeIndex b) {
    while (a != b) {
      while (rpo_number_[a] > rpo_number_[b]) a = idom_[a];
      while (rpo_number_[b] > rpo_number_[a]) b = idom_[b];
    }
    return a;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (NodeIndex u : rpo) {
      if (u == dag.entry()) continue;
      NodeIndex new_idom = kUndefined;
      for (NodeIndex p : dag.node(u).predecessors) {
        if (idom_[p] == kUndefined) continue;
        new_idom = (new_idom == kUndefined) ? p : intersect(p, new_idom);
      }
      check(new_idom != kUndefined, "DominatorTree: node with no processed pred");
      if (idom_[u] != new_idom) {
        idom_[u] = new_idom;
        changed = true;
      }
    }
  }

  children_.assign(n, {});
  for (NodeIndex u = 0; u < n; ++u) {
    if (u == dag.entry()) continue;
    children_[idom_[u]].push_back(u);
  }
  for (auto& kids : children_) std::sort(kids.begin(), kids.end());
}

bool DominatorTree::dominates(NodeIndex a, NodeIndex b) const {
  if (a >= size() || b >= size()) {
    throw std::out_of_range("DominatorTree::dominates: node out of range");
  }
  // Walk b's dominator chain up to the entry.
  NodeIndex cur = b;
  for (;;) {
    if (cur == a) return true;
    const NodeIndex up = idom_[cur];
    if (up == cur) return false;  // reached the entry
    cur = up;
  }
}

}  // namespace esg::core
