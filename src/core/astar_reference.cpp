#include "core/astar_reference.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>
#include <vector>

#include "common/check.hpp"

namespace esg::core {

namespace {

struct Node {
  double f = 0.0;       // g + h (per-job cost)
  Usd g = 0.0;          // accumulated per-job cost
  TimeMs latency = 0.0; // accumulated latency
  std::size_t stage = 0;
  std::vector<std::size_t> picks;  // entry index per completed stage

  bool operator>(const Node& other) const { return f > other.f; }
};

}  // namespace

SearchResult astar_reference(std::span<const StageInput> stages,
                             TimeMs g_slo_ms) {
  if (stages.empty()) throw std::invalid_argument("astar_reference: no stages");
  const std::size_t n = stages.size();

  std::vector<std::vector<profile::ProfileEntry>> lists(n);
  for (std::size_t i = 0; i < n; ++i) {
    check(stages[i].table != nullptr, "astar_reference: null table");
    if (stages[i].batch_cap == 0) {
      const auto span = stages[i].table->entries();
      lists[i].assign(span.begin(), span.end());
    } else {
      lists[i] = stages[i].table->entries_with_batch_at_most(stages[i].batch_cap);
    }
    if (lists[i].empty()) {
      throw std::invalid_argument("astar_reference: empty stage");
    }
  }

  // Admissible heuristics over the remaining stages.
  std::vector<Usd> suffix_min_cost(n + 1, 0.0);
  std::vector<TimeMs> suffix_min_lat(n + 1, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    Usd min_cost = lists[i].front().per_job_cost;
    TimeMs min_lat = lists[i].front().latency_ms;
    for (const auto& e : lists[i]) {
      min_cost = std::min(min_cost, e.per_job_cost);
      min_lat = std::min(min_lat, e.latency_ms);
    }
    suffix_min_cost[i] = min_cost + suffix_min_cost[i + 1];
    suffix_min_lat[i] = min_lat + suffix_min_lat[i + 1];
  }

  SearchResult result;
  std::priority_queue<Node, std::vector<Node>, std::greater<>> open;
  open.push(Node{suffix_min_cost[0], 0.0, 0.0, 0, {}});

  while (!open.empty()) {
    Node cur = open.top();
    open.pop();
    ++result.stats.nodes_expanded;

    if (cur.stage == n) {
      // First complete node popped = optimal (admissible heuristic).
      SearchPath path;
      path.entries.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        path.entries.push_back(lists[i][cur.picks[i]]);
      }
      path.total_latency_ms = cur.latency;
      path.total_per_job_cost = cur.g;
      result.config_pq.push_back(std::move(path));
      result.met_slo = true;
      return result;
    }

    for (std::size_t idx = 0; idx < lists[cur.stage].size(); ++idx) {
      const auto& e = lists[cur.stage][idx];
      const TimeMs latency = cur.latency + e.latency_ms;
      // Feasibility pruning with the admissible latency bound.
      if (latency + suffix_min_lat[cur.stage + 1] >= g_slo_ms) continue;
      Node next;
      next.g = cur.g + e.per_job_cost;
      next.latency = latency;
      next.stage = cur.stage + 1;
      next.f = next.g + suffix_min_cost[next.stage];
      next.picks = cur.picks;
      next.picks.push_back(idx);
      open.push(std::move(next));
    }
  }

  result.met_slo = false;  // nothing feasible
  return result;
}

}  // namespace esg::core
