// Exhaustive reference search: enumerates the full Cartesian configuration
// space. Used (i) by tests to verify that ESG_1Q's pruning never sacrifices
// optimality, and (ii) by the Section 5.3/5.4 bench that reproduces the
// paper's brute-force-vs-pruned overhead comparison.
#pragma once

#include <span>

#include "core/esg_1q.hpp"

namespace esg::core {

/// Same contract as esg_1q (K cheapest feasible paths, fastest-path fallback),
/// implemented by full enumeration. stats.nodes_expanded counts every path.
[[nodiscard]] SearchResult brute_force_search(std::span<const StageInput> stages,
                                              TimeMs g_slo_ms,
                                              const SearchOptions& options = {});

}  // namespace esg::core
