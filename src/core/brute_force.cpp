#include "core/brute_force.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/check.hpp"

namespace esg::core {

SearchResult brute_force_search(std::span<const StageInput> stages,
                                TimeMs g_slo_ms, const SearchOptions& options) {
  if (stages.empty()) throw std::invalid_argument("brute_force_search: no stages");
  if (options.k == 0) throw std::invalid_argument("brute_force_search: k == 0");
  const std::size_t n = stages.size();

  std::vector<std::vector<profile::ProfileEntry>> lists(n);
  for (std::size_t i = 0; i < n; ++i) {
    check(stages[i].table != nullptr, "brute_force_search: null table");
    if (stages[i].batch_cap == 0) {
      const auto span = stages[i].table->entries();
      lists[i].assign(span.begin(), span.end());
    } else {
      lists[i] = stages[i].table->entries_with_batch_at_most(stages[i].batch_cap);
    }
    if (lists[i].empty()) {
      throw std::invalid_argument("brute_force_search: empty stage");
    }
  }

  SearchResult result;
  std::vector<SearchPath> feasible;
  SearchPath fastest;
  fastest.total_latency_ms = 0.0;

  // Track the fastest path for the fallback.
  for (std::size_t i = 0; i < n; ++i) {
    const auto best = std::min_element(
        lists[i].begin(), lists[i].end(),
        [](const auto& a, const auto& b) { return a.latency_ms < b.latency_ms; });
    fastest.entries.push_back(*best);
    fastest.total_latency_ms += best->latency_ms;
    fastest.total_per_job_cost += best->per_job_cost;
  }

  std::vector<std::size_t> cursor(n, 0);
  for (;;) {
    ++result.stats.nodes_expanded;
    TimeMs latency = 0.0;
    Usd cost = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      latency += lists[i][cursor[i]].latency_ms;
      cost += lists[i][cursor[i]].per_job_cost;
    }
    if (latency < g_slo_ms) {
      SearchPath p;
      p.entries.reserve(n);
      for (std::size_t i = 0; i < n; ++i) p.entries.push_back(lists[i][cursor[i]]);
      p.total_latency_ms = latency;
      p.total_per_job_cost = cost;
      feasible.push_back(std::move(p));
      // Keep memory bounded: trim to the K cheapest once in a while.
      if (feasible.size() > options.k * 64) {
        std::nth_element(feasible.begin(), feasible.begin() + options.k,
                         feasible.end(), [](const auto& a, const auto& b) {
                           return a.total_per_job_cost < b.total_per_job_cost;
                         });
        feasible.resize(options.k);
      }
    }
    // Odometer increment.
    std::size_t i = 0;
    while (i < n && ++cursor[i] == lists[i].size()) {
      cursor[i] = 0;
      ++i;
    }
    if (i == n) break;
  }

  if (!feasible.empty()) {
    std::sort(feasible.begin(), feasible.end(), [](const auto& a, const auto& b) {
      if (a.total_per_job_cost != b.total_per_job_cost) {
        return a.total_per_job_cost < b.total_per_job_cost;
      }
      return a.total_latency_ms < b.total_latency_ms;
    });
    feasible.resize(std::min(options.k, feasible.size()));
    result.config_pq = std::move(feasible);
    result.met_slo = true;
  } else {
    result.config_pq.push_back(std::move(fastest));
    result.met_slo = false;
  }
  return result;
}

}  // namespace esg::core
