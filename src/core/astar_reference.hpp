// Textbook A* over the configuration-path graph, used as an independent
// cross-check of ESG_1Q's optimality (same contract, completely different
// search discipline). Nodes are (stage, accumulated cost/latency) states;
// the admissible heuristic is the suffix minimum per-job cost, exactly the
// quantity ESG_1Q's rscLow blade uses as a bound.
//
// This is intentionally the "obvious" implementation — priority queue over
// f = g + h, no dual-blade pruning — so a disagreement between the two
// searches localises bugs quickly. It returns the single cheapest feasible
// path (K = 1 semantics).
#pragma once

#include <span>

#include "core/esg_1q.hpp"

namespace esg::core {

/// A*: cheapest configuration path with total latency < g_slo_ms.
/// Returns met_slo = false (and an empty config_pq) when nothing fits —
/// unlike esg_1q it performs no fastest-path fallback, keeping it a pure
/// reference for the feasible case.
[[nodiscard]] SearchResult astar_reference(std::span<const StageInput> stages,
                                           TimeMs g_slo_ms);

}  // namespace esg::core
