#include "core/slo_distribution.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/check.hpp"
#include "core/dominator.hpp"

namespace esg::core {

using workload::AppDag;
using workload::NodeIndex;

std::vector<double> average_normalized_lengths(
    const AppDag& dag, const profile::ProfileSet& profiles) {
  const std::size_t n = dag.size();
  // Latency lists per node, sorted ascending (ProfileTable order).
  std::vector<std::vector<TimeMs>> lat(n);
  std::size_t max_ranks = 0;
  for (NodeIndex i = 0; i < n; ++i) {
    const auto entries = profiles.table(dag.node(i).function).entries();
    lat[i].reserve(entries.size());
    for (const auto& e : entries) lat[i].push_back(e.latency_ms);
    max_ranks = std::max(max_ranks, lat[i].size());
  }
  check(max_ranks > 0, "average_normalized_lengths: empty profiles");

  auto at_rank = [&](NodeIndex i, std::size_t r) {
    return lat[i][std::min(r, lat[i].size() - 1)];
  };

  std::vector<double> anl(n, 0.0);
  for (std::size_t r = 0; r < max_ranks; ++r) {
    double total = 0.0;
    for (NodeIndex i = 0; i < n; ++i) total += at_rank(i, r);
    for (NodeIndex i = 0; i < n; ++i) anl[i] += at_rank(i, r) / total;
  }
  for (double& v : anl) v /= static_cast<double>(max_ranks);
  return anl;
}

namespace {

/// An item of a reduced chain: an original node, or a pseudo-node standing
/// for a set of parallel branches.
struct ChainItem {
  bool reduced = false;
  NodeIndex node = 0;                            // when !reduced
  double anl = 0.0;                              // weight of this item
  std::vector<std::vector<ChainItem>> branches;  // when reduced
};

double chain_weight(const std::vector<ChainItem>& chain) {
  double total = 0.0;
  for (const auto& item : chain) total += item.anl;
  return total;
}

/// Recursively reduces the sub-DAG dominated by `x` into a linear chain.
std::vector<ChainItem> reduce_chain(const AppDag& dag, const DominatorTree& dom,
                                    const std::vector<double>& anl,
                                    const std::vector<std::size_t>& topo_pos,
                                    NodeIndex x) {
  std::vector<ChainItem> chain;
  chain.push_back(ChainItem{false, x, anl[x], {}});

  const auto& kids = dom.children(x);
  if (kids.empty()) return chain;
  if (kids.size() == 1) {
    auto rest = reduce_chain(dag, dom, anl, topo_pos, kids.front());
    chain.insert(chain.end(), std::make_move_iterator(rest.begin()),
                 std::make_move_iterator(rest.end()));
    return chain;
  }

  // Multiple dominator children: branch heads have DAG in-degree 1 (they are
  // direct forks of x); join nodes have in-degree >= 2 and continue the
  // chain after the branches merge.
  std::vector<NodeIndex> branch_heads;
  std::vector<NodeIndex> joins;
  for (NodeIndex k : kids) {
    if (dag.node(k).predecessors.size() >= 2) {
      joins.push_back(k);
    } else {
      branch_heads.push_back(k);
    }
  }
  check(!branch_heads.empty(), "reduce_chain: split node without branches");

  // reduce(x): combine the branches into one pseudo-node whose ANL is the
  // maximum of the branch sums (Figure 4 (c)).
  ChainItem reduced;
  reduced.reduced = true;
  reduced.anl = 0.0;
  for (NodeIndex head : branch_heads) {
    auto branch = reduce_chain(dag, dom, anl, topo_pos, head);
    reduced.anl = std::max(reduced.anl, chain_weight(branch));
    reduced.branches.push_back(std::move(branch));
  }
  chain.push_back(std::move(reduced));

  // Continue with the join node(s), in topological order.
  std::sort(joins.begin(), joins.end(), [&](NodeIndex a, NodeIndex b) {
    return topo_pos[a] < topo_pos[b];
  });
  for (NodeIndex j : joins) {
    auto rest = reduce_chain(dag, dom, anl, topo_pos, j);
    chain.insert(chain.end(), std::make_move_iterator(rest.begin()),
                 std::make_move_iterator(rest.end()));
  }
  return chain;
}

}  // namespace

SloDistribution::SloDistribution(const AppDag& dag,
                                 const profile::ProfileSet& profiles,
                                 std::size_t max_group_size) {
  if (max_group_size == 0) {
    throw std::invalid_argument("SloDistribution: max_group_size must be > 0");
  }
  const std::size_t n = dag.size();
  anl_ = average_normalized_lengths(dag, profiles);

  const DominatorTree dom(dag);
  std::vector<std::size_t> topo_pos(n);
  {
    const auto order = dag.topo_order();
    for (std::size_t i = 0; i < order.size(); ++i) topo_pos[order[i]] = i;
  }
  const auto root_chain = reduce_chain(dag, dom, anl_, topo_pos, dag.entry());

  group_index_.assign(n, 0);
  node_fraction_.assign(n, 0.0);

  // slo_group + slo_assign: walk a chain with an absolute budget share,
  // partition it into groups of <= max_group_size consecutive real nodes
  // (reduced pseudo-nodes stay alone) with shares proportional to ANL, and
  // recurse into every branch of each reduced node with that node's share.
  auto assign_chain = [&](auto&& self, const std::vector<ChainItem>& chain,
                          double budget) -> void {
    const double total = chain_weight(chain);
    check(total > 0.0, "SloDistribution: zero-weight chain");

    std::size_t i = 0;
    while (i < chain.size()) {
      if (chain[i].reduced) {
        const double share = budget * chain[i].anl / total;
        for (const auto& branch : chain[i].branches) {
          if (!branch.empty()) self(self, branch, share);
        }
        ++i;
        continue;
      }
      // A run of up to max_group_size consecutive real nodes.
      Group group;
      double weight = 0.0;
      while (i < chain.size() && !chain[i].reduced &&
             group.nodes.size() < max_group_size) {
        group.nodes.push_back(chain[i].node);
        weight += chain[i].anl;
        ++i;
      }
      group.fraction = budget * weight / total;
      const std::size_t gi = groups_.size();
      for (NodeIndex node : group.nodes) {
        group_index_[node] = gi;
        node_fraction_[node] =
            weight > 0.0 ? group.fraction * anl_[node] / weight : 0.0;
      }
      groups_.push_back(std::move(group));
    }
  };
  assign_chain(assign_chain, root_chain, 1.0);

  // Critical-path share from each node to the sinks (reverse topological).
  remaining_fraction_.assign(n, 0.0);
  const auto order = dag.topo_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeIndex u = *it;
    double best = 0.0;
    for (NodeIndex s : dag.node(u).successors) {
      best = std::max(best, remaining_fraction_[s]);
    }
    remaining_fraction_[u] = node_fraction_[u] + best;
  }
}

std::size_t SloDistribution::group_of(NodeIndex node) const {
  return group_index_.at(node);
}

double SloDistribution::node_fraction(NodeIndex node) const {
  return node_fraction_.at(node);
}

double SloDistribution::remaining_fraction(NodeIndex node) const {
  return remaining_fraction_.at(node);
}

}  // namespace esg::core
