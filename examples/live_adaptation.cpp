// Demonstrates the property that separates ESG from plan-once schedulers
// (Orion, Aquatope): it re-plans before every stage dispatch, so a request
// whose early stages ran slow gets faster configurations for its remaining
// stages — and one that ran fast is allowed to relax into cheaper ones.
#include <cstdio>

#include "common/table.hpp"
#include "core/esg_scheduler.hpp"
#include "exp/scenario.hpp"
#include "workload/applications.hpp"

int main() {
  using namespace esg;

  const auto profiles = profile::ProfileSet::builtin();
  const auto apps = workload::builtin_applications();
  const auto& app = apps[3];  // expanded_image_classification (5 stages)
  core::EsgScheduler scheduler(apps, profiles);

  platform::QueueView view;
  view.app = app.id();
  view.stage = 3;  // segmentation, late in the pipeline
  view.function = app.node(3).function;
  view.dag = &app;
  view.profiles = &profiles;
  view.queue_length = 4;
  view.head_wait_ms = 1e9;  // decided to dispatch now
  view.slo_ms =
      workload::slo_latency_ms(app, profiles, workload::SloSetting::kModerate);

  std::printf("Planning stage 4/5 (%s) of %s, SLO %.0f ms, at different "
              "amounts of already-consumed budget:\n\n",
              profiles.table(view.function).spec().name.c_str(),
              app.name().c_str(), view.slo_ms);

  AsciiTable table({"budget consumed", "chosen config", "expected latency (ms)",
                    "per-job cost ($)"});
  for (const double consumed : {0.0, 0.3, 0.6, 0.8}) {
    view.oldest_elapsed_ms = consumed * view.slo_ms;
    const auto plan = scheduler.plan(view);
    const auto& entry =
        profiles.table(view.function).at(plan.candidates.front());
    char label[32];
    std::snprintf(label, sizeof label, "%.0f%%", 100.0 * consumed);
    table.add_row({label, to_string(entry.config),
                   AsciiTable::num(entry.latency_ms, 0),
                   AsciiTable::num(entry.per_job_cost, 6)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("The tighter the remaining budget, the faster (and costlier) "
              "the configuration ESG picks — a plan-once scheduler would "
              "keep the 0%% row regardless.\n\n");

  // The same effect end-to-end: with heavy execution noise, adaptive ESG
  // still lands most requests under the SLO.
  exp::Scenario s;
  s.scheduler = exp::SchedulerKind::kEsg;
  s.load = workload::LoadSetting::kNormal;
  s.slo = workload::SloSetting::kModerate;
  s.horizon_ms = 5'000.0;
  s.controller.noise_cv = 0.15;  // 2.5x the default performance variation
  const auto out = exp::run_scenario(s);
  std::printf("Under 15%% execution-time noise: %zu requests, %.1f%% SLO "
              "hits, $%.4f total cost.\n",
              out.metrics.requests(), 100.0 * out.metrics.slo_hit_rate(),
              out.metrics.total_cost);
  return 0;
}
