// Quickstart: the smallest end-to-end tour of the library.
//
//  1. Build the performance profiles for the six Table 3 DNN functions.
//  2. Look at one configuration space.
//  3. Ask ESG_1Q for the cheapest configuration path of a pipeline under an
//     SLO target.
//  4. Run a short simulated workload under the full ESG scheduler and print
//     the headline metrics.
#include <cstdio>

#include "common/table.hpp"
#include "core/esg_1q.hpp"
#include "exp/scenario.hpp"
#include "profile/function_spec.hpp"
#include "workload/applications.hpp"

int main() {
  using namespace esg;

  // 1. Profiles: expected latency + cost for every (batch, vCPU, vGPU).
  const auto profiles = profile::ProfileSet::builtin();
  std::printf("== The six DNN serverless functions (Table 3) ==\n");
  AsciiTable specs({"function", "model", "base (ms)", "cold start (ms)",
                    "input (MB)", "configs"});
  for (const auto& spec : profile::builtin_specs()) {
    specs.add_row({spec.name, spec.model, AsciiTable::num(spec.base_latency_ms, 0),
                   AsciiTable::num(spec.cold_start_ms, 0),
                   AsciiTable::num(spec.input_mb, 2),
                   std::to_string(profiles.table(spec.id).entries().size())});
  }
  std::printf("%s\n", specs.render().c_str());

  // 2. A few profile entries of one function.
  const auto& deblur = profiles.table(profile::id_of(profile::Function::kDeblur));
  std::printf("== Fastest / cheapest deblur configurations ==\n");
  std::printf("fastest:  %s -> %.0f ms, $%.6f per job\n",
              to_string(deblur.fastest().config).c_str(),
              deblur.fastest().latency_ms, deblur.fastest().per_job_cost);
  const auto cheapest = *std::min_element(
      deblur.entries().begin(), deblur.entries().end(),
      [](const auto& a, const auto& b) { return a.per_job_cost < b.per_job_cost; });
  std::printf("cheapest: %s -> %.0f ms, $%.6f per job\n\n",
              to_string(cheapest.config).c_str(), cheapest.latency_ms,
              cheapest.per_job_cost);

  // 3. ESG_1Q on the image-classification pipeline.
  const auto apps = workload::builtin_applications();
  const auto& app = apps[0];
  const TimeMs slo =
      workload::slo_latency_ms(app, profiles, workload::SloSetting::kModerate);
  std::vector<core::StageInput> stages;
  for (const auto& node : app.nodes()) {
    stages.push_back(core::StageInput{&profiles.table(node.function), 0});
  }
  const auto search = core::esg_1q(stages, slo, {.k = 3});
  std::printf("== ESG_1Q on %s (SLO %.0f ms) ==\n", app.name().c_str(), slo);
  std::printf("examined %zu configurations; %zu paths in the configPQ\n",
              search.stats.nodes_expanded, search.config_pq.size());
  for (const auto& path : search.config_pq) {
    std::printf("  path: ");
    for (const auto& e : path.entries) {
      std::printf("%s ", to_string(e.config).c_str());
    }
    std::printf("-> %.0f ms, $%.6f per job\n", path.total_latency_ms,
                path.total_per_job_cost);
  }

  // 4. A short simulated workload under the full scheduler.
  exp::Scenario scenario;
  scenario.scheduler = exp::SchedulerKind::kEsg;
  scenario.load = workload::LoadSetting::kLight;
  scenario.slo = workload::SloSetting::kModerate;
  scenario.horizon_ms = 5'000.0;
  const auto out = exp::run_scenario(scenario);
  std::printf("\n== 5 s of light traffic on 16 simulated invokers ==\n");
  std::printf("requests: %zu   SLO hit rate: %.1f%%   cost: $%.4f   "
              "cold starts: %zu   warm starts: %zu\n",
              out.metrics.requests(), 100.0 * out.metrics.slo_hit_rate(),
              out.metrics.total_cost, out.metrics.cold_starts,
              out.metrics.warm_starts);
  return 0;
}
