// Compares all five schedulers on the same moderate-normal workload — a
// miniature of the paper's Figure 6 experiment, runnable in seconds.
#include <cstdio>

#include "common/table.hpp"
#include "exp/scenario.hpp"

int main() {
  using namespace esg;
  std::printf("Scheduling 8 s of moderate-normal DNN-workflow traffic with "
              "each scheduler...\n\n");

  AsciiTable table({"scheduler", "SLO hit rate", "total cost ($)",
                    "cold starts", "local inputs", "config misses"});
  double esg_cost = 0.0;
  for (const auto kind : exp::all_schedulers()) {
    exp::Scenario s;
    s.scheduler = kind;
    s.load = workload::LoadSetting::kNormal;
    s.slo = workload::SloSetting::kModerate;
    s.horizon_ms = 8'000.0;
    s.seed = 7;
    const auto out = exp::run_scenario(s);
    if (kind == exp::SchedulerKind::kEsg) esg_cost = out.metrics.total_cost;
    const auto& m = out.metrics;
    table.add_row({std::string(exp::to_string(kind)),
                   AsciiTable::pct(m.slo_hit_rate()),
                   AsciiTable::num(m.total_cost, 4),
                   std::to_string(m.cold_starts),
                   std::to_string(m.local_inputs),
                   std::to_string(m.plan_misses)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("(ESG cost baseline: $%.4f — the paper reports ESG with the "
              "highest hit rate at the lowest or near-lowest cost)\n",
              esg_cost);
  return 0;
}
