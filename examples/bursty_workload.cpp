// Drives the platform with a bursty arrival process (calm light phases with
// heavy bursts) instead of the paper's stationary settings, and shows how
// ESG's per-stage re-planning absorbs the bursts compared to the static
// plan-once Aquatope.
#include <cstdio>

#include "baselines/aquatope.hpp"
#include "common/table.hpp"
#include "core/esg_scheduler.hpp"
#include "platform/controller.hpp"
#include "sim/simulator.hpp"
#include "workload/bursty_arrivals.hpp"

namespace {

esg::metrics::RunMetrics run_with(bool use_esg) {
  using namespace esg;
  const RngFactory rng(77);
  const auto profiles = profile::ProfileSet::builtin();
  const auto apps = workload::builtin_applications();

  sim::Simulator sim;
  cluster::Cluster cluster(16);
  core::EsgScheduler esg_sched(apps, profiles);
  baselines::AquatopeScheduler bo_sched(apps, profiles,
                                        workload::SloSetting::kModerate, rng);
  platform::Scheduler& sched =
      use_esg ? static_cast<platform::Scheduler&>(esg_sched)
              : static_cast<platform::Scheduler&>(bo_sched);

  platform::ControllerOptions opts;
  opts.metrics_warmup_ms = 20'000.0;
  platform::Controller controller(sim, cluster, profiles, apps,
                                  workload::SloSetting::kModerate, sched, rng,
                                  opts);

  std::vector<AppId> ids;
  for (const auto& app : apps) ids.push_back(app.id());
  workload::BurstyArrivalGenerator gen({}, ids, rng.stream("bursty"));
  controller.inject(gen.generate_until(60'000.0));
  controller.run_to_completion();
  return controller.metrics();
}

}  // namespace

int main() {
  using namespace esg;
  std::printf("60 s of bursty traffic (light baseline, heavy bursts), "
              "moderate SLOs, measured after 20 s warm-up:\n\n");

  AsciiTable table({"scheduler", "requests", "SLO hit rate", "cost ($)",
                    "mean wait (ms)", "plan misses"});
  for (const bool use_esg : {true, false}) {
    const auto m = run_with(use_esg);
    table.add_row({use_esg ? "ESG" : "Aquatope", std::to_string(m.requests()),
                   AsciiTable::pct(m.slo_hit_rate()),
                   AsciiTable::num(m.total_cost, 4),
                   AsciiTable::num(m.mean_job_wait_ms(), 1),
                   std::to_string(m.plan_misses)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("ESG re-plans every stage against the live queue state, so "
              "bursts cost it latency headroom it had already reserved; the "
              "offline-trained plan cannot react at all (its plan misses "
              "count the times its configuration no longer applied).\n");
  return 0;
}
