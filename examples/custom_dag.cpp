// Builds a custom split/join application DAG (not one of the paper's four
// pipelines), prints its dominator tree and dominator-based SLO
// distribution, and runs it through the full simulated platform under ESG.
//
// This exercises the general DAG path of the machinery: the paper's own
// workloads are linear pipelines, but the algorithms are defined for any
// hierarchically reducible DAG (Section 3.3, Figure 4).
#include <cstdio>

#include "core/dominator.hpp"
#include "core/esg_scheduler.hpp"
#include "core/slo_distribution.hpp"
#include "platform/controller.hpp"
#include "profile/function_spec.hpp"
#include "sim/simulator.hpp"

int main() {
  using namespace esg;
  using profile::Function;

  // A diamond: deblur fans out to super-resolution and segmentation in
  // parallel; classification joins on both outputs.
  workload::AppDag dag(AppId(0), "parallel_enhance_classify");
  const auto deblur = dag.add_node(profile::id_of(Function::kDeblur));
  const auto sr = dag.add_node(profile::id_of(Function::kSuperResolution));
  const auto seg = dag.add_node(profile::id_of(Function::kSegmentation));
  const auto cls = dag.add_node(profile::id_of(Function::kClassification));
  dag.add_edge(deblur, sr);
  dag.add_edge(deblur, seg);
  dag.add_edge(sr, cls);
  dag.add_edge(seg, cls);
  dag.validate();

  const auto profiles = profile::ProfileSet::builtin();
  const auto name_of = [&](workload::NodeIndex n) {
    return profiles.table(dag.node(n).function).spec().name.c_str();
  };

  std::printf("== Dominator tree ==\n");
  const core::DominatorTree dom(dag);
  for (workload::NodeIndex n = 0; n < dag.size(); ++n) {
    std::printf("  idom(%s) = %s\n", name_of(n), name_of(dom.idom(n)));
  }

  std::printf("\n== Dominator-based SLO distribution (group size 3) ==\n");
  const core::SloDistribution dist(dag, profiles, 3);
  for (const auto& group : dist.groups()) {
    std::printf("  group { ");
    for (const auto n : group.nodes) std::printf("%s ", name_of(n));
    std::printf("} <- %.1f%% of the SLO\n", 100.0 * group.fraction);
  }
  std::printf("  (parallel branches each receive their reduced node's full "
              "share)\n");

  const TimeMs baseline = workload::baseline_latency_ms(dag, profiles);
  const TimeMs slo =
      workload::slo_latency_ms(dag, profiles, workload::SloSetting::kModerate);
  std::printf("\ncritical-path baseline L = %.0f ms, moderate SLO = %.0f ms\n",
              baseline, slo);

  // Run 20 requests through the platform under ESG.
  std::vector<workload::AppDag> apps;
  apps.push_back(dag);
  sim::Simulator sim;
  cluster::Cluster cluster(4);
  const RngFactory rng(21);
  core::EsgScheduler scheduler(apps, profiles);
  platform::Controller controller(sim, cluster, profiles, apps,
                                  workload::SloSetting::kModerate, scheduler,
                                  rng);
  std::vector<workload::Arrival> arrivals;
  for (int i = 0; i < 20; ++i) {
    arrivals.push_back({100.0 * i, dag.id()});
  }
  controller.inject(arrivals);
  controller.run_to_completion();

  const auto& m = controller.metrics();
  std::printf("\n== 20 requests through the simulated platform ==\n");
  std::printf("completed: %zu   hit rate: %.0f%%   tasks: %zu   "
              "cost: $%.4f\n",
              m.requests(), 100.0 * m.slo_hit_rate(), m.tasks, m.total_cost);
  std::printf("(the first requests pay cold starts; once containers are "
              "warm, the diamond's branches run concurrently)\n");
  return 0;
}
