// esg_report — offline SLO-attribution over a saved Chrome/Perfetto trace.
// Rebuilds every request's critical path, decomposes its latency, classifies
// SLO misses by dominant cause, and prints the per-app rollup. With
// --json-out the report is byte-identical to what `esg_sim --report-out`
// wrote for the same run (the determinism contract of obs/analysis).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>

#include "common/build_info.hpp"
#include "obs/analysis/attribution.hpp"
#include "obs/analysis/trace_reader.hpp"

namespace {

const char kUsage[] =
    R"(esg_report — SLO-budget attribution over a saved trace

usage: esg_report <trace.json> [--json-out <path>] [--json]

  <trace.json>       Chrome-trace-event file from esg_sim --trace-out
  --json-out <path>  also write the attribution report as JSON (byte-identical
                     to esg_sim --report-out for the same run)
  --json             print the JSON report to stdout instead of the table
  --version          print one provenance line (commit, compiler, build)
  --build-info       print the full build/host provenance record
  --help

exit codes: 0 success; 2 configuration error (bad flag, missing/malformed
trace); 1 runtime failure (unwritable output, internal error).
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace esg::obs::analysis;
  std::string trace_path;
  std::string json_out;
  bool json_stdout = false;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::printf("%s", kUsage);
      return 0;
    }
    if (arg == "--version") {
      std::printf("%s\n", esg::common::version_line("esg_report").c_str());
      return 0;
    }
    if (arg == "--build-info") {
      esg::common::write_build_info(stdout, "esg_report");
      return 0;
    }
    if (arg == "--json") {
      json_stdout = true;
    } else if (arg == "--json-out") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "esg_report: missing value for --json-out\n%s",
                     kUsage);
        return 2;
      }
      json_out = argv[++i];
    } else if (!arg.empty() && arg.front() == '-') {
      std::fprintf(stderr, "esg_report: unknown flag '%s'\n%s", argv[i],
                   kUsage);
      return 2;
    } else if (trace_path.empty()) {
      trace_path = std::string(arg);
    } else {
      std::fprintf(stderr, "esg_report: unexpected argument '%s'\n%s", argv[i],
                   kUsage);
      return 2;
    }
  }
  if (trace_path.empty()) {
    std::fprintf(stderr, "esg_report: no trace file given\n%s", kUsage);
    return 2;
  }

  try {
    const TraceDataset dataset = read_chrome_trace_file(trace_path);
    const AttributionReport report = build_report(dataset);
    if (!json_out.empty()) {
      std::ofstream file(json_out);
      if (!file) {
        throw std::runtime_error("cannot open '" + json_out + "'");
      }
      write_report_json(report, file);
      std::printf("report written to %s\n", json_out.c_str());
    }
    if (json_stdout) {
      write_report_json(report, std::cout);
    } else {
      std::printf("%s", render_report_table(report).c_str());
    }
  } catch (const std::invalid_argument& e) {
    // An unreadable or malformed trace file is an input error, distinct from
    // failures while producing the report.
    std::fprintf(stderr, "esg_report: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "esg_report: %s\n", e.what());
    return 1;
  }
  return 0;
}
