// esg_perfdiff — compare two perf/BENCH JSON artefacts and flag throughput
// regressions. Exit codes: 0 no regression (or --report-only), 1 regression
// past the threshold, 2 usage/parse error.
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/build_info.hpp"
#include "perf/perfdiff.hpp"

namespace {

constexpr const char* kUsage =
    R"(esg_perfdiff — diff two perf/BENCH JSON artefacts for regressions

usage: esg_perfdiff [flags] <baseline.json> <current.json>

  --threshold <frac>   allowed fractional move on gating metrics before
                       a regression is declared (default 0.10 = 10%)
  --gate-suffix <sfx>  also gate metrics ending in <sfx> (repeatable;
                       appended to the default *_per_sec). Suffixes are
                       higher-is-better; prefix with '-' for lower-is-
                       better fields (e.g. --gate-suffix -cold_start_rate
                       fails when the rate rises past the threshold)
  --report-only        print the comparison but always exit 0 on success
                       (for CI hosts that differ from the baseline's)
  --version            print one provenance line and exit
  --help

By default only *_per_sec metrics gate the verdict (higher is better);
counters and wall times are reported informationally when they move past
the threshold. --gate-suffix promotes more fields into the verdict.
Rows are matched by their string fields (scheduler, ...) plus rate_scale and
seed, so reordered baselines still line up. The "engine" field is excluded
from the identity: it is informational provenance (both event-queue engines
produce byte-identical runs), so baselines written before the field existed
still match rows that carry it.

exit codes: 0 no regression; 1 regression past threshold; 2 usage or
malformed/unreadable JSON.
)";

double parse_threshold(const char* value) {
  char* end = nullptr;
  const double v = std::strtod(value, &end);
  if (end == value || *end != '\0' || !(v >= 0.0) || v >= 1.0) {
    throw std::invalid_argument(
        "--threshold must be a fraction in [0, 1), got '" +
        std::string(value) + "'");
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace esg;
  perf::DiffOptions options;
  std::vector<std::string> files;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string_view arg = argv[i];
      if (arg == "--help" || arg == "-h") {
        std::printf("%s", kUsage);
        return 0;
      }
      if (arg == "--version") {
        std::printf("%s\n", common::version_line("esg_perfdiff").c_str());
        return 0;
      }
      if (arg == "--report-only") {
        options.report_only = true;
      } else if (arg == "--threshold") {
        if (i + 1 >= argc) {
          throw std::invalid_argument("missing value for --threshold");
        }
        options.threshold = parse_threshold(argv[++i]);
      } else if (arg == "--gate-suffix") {
        if (i + 1 >= argc) {
          throw std::invalid_argument("missing value for --gate-suffix");
        }
        const std::string suffix = argv[++i];
        if (suffix.empty() || suffix == "-") {
          throw std::invalid_argument("--gate-suffix must not be empty");
        }
        options.gate_suffixes.push_back(suffix);
      } else if (arg.rfind("--", 0) == 0) {
        throw std::invalid_argument("unknown flag '" + std::string(arg) +
                                    "' (see --help)");
      } else {
        files.emplace_back(arg);
      }
    }
    if (files.size() != 2) {
      throw std::invalid_argument("expected exactly two JSON files, got " +
                                  std::to_string(files.size()));
    }
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "esg_perfdiff: %s\n%s", e.what(), kUsage);
    return 2;
  }

  try {
    const perf::DiffResult result =
        perf::diff_files(files[0], files[1], options);
    perf::print_diff(stdout, result, options);
    if (result.regressed && !options.report_only) return 1;
    return 0;
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "esg_perfdiff: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "esg_perfdiff: %s\n", e.what());
    return 1;
  }
}
