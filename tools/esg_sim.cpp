// esg_sim — command-line driver for the simulated serverless platform.
// Runs one scenario (scheduler x load x SLO, any knob) over one or more
// seeds, prints the headline metrics, and optionally dumps CSVs.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "common/build_info.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "exp/cli.hpp"
#include "metrics/export.hpp"
#include "perf/profiler.hpp"
#include "perf/report.hpp"
#include "sweep/sweep.hpp"
#include "tenant/tenant_spec.hpp"

namespace {

/// --sweep: run the (scheduler × seed) cross product on the pool, print a
/// per-cell table plus per-scheduler aggregates, optionally dump the result
/// table as deterministic JSON (esg.sweep.v1 — wall-clock fields excluded,
/// so the file is byte-identical for any --jobs count).
int run_sweep_cli(const esg::exp::CliOptions& opts) {
  using namespace esg;
  sweep::SweepOptions sweep_opts;
  sweep_opts.jobs = opts.jobs;
  const std::vector<sweep::SweepCellResult> results = sweep::run_sweep(
      sweep::cross_product(opts.scenario, opts.schedulers, opts.seeds),
      sweep_opts);

  bool any_failed = false;
  AsciiTable table({"cell", "requests", "SLO hit rate", "cost ($)",
                    "cold starts", "mean wait (ms)"});
  for (const auto& cell : results) {
    if (cell.failed) {
      any_failed = true;
      table.add_row({cell.label, "-", "failed", "-", "-", "-"});
      std::fprintf(stderr, "esg_sim: cell %s failed: %s\n", cell.label.c_str(),
                   cell.error.c_str());
      continue;
    }
    const auto& m = cell.output.metrics;
    table.add_row({cell.label, std::to_string(m.requests()),
                   AsciiTable::pct(m.slo_hit_rate()),
                   AsciiTable::num(m.total_cost, 4),
                   std::to_string(m.cold_starts),
                   AsciiTable::num(m.mean_job_wait_ms(), 1)});
  }
  std::printf("%s\n", table.render().c_str());

  // Per-scheduler aggregates: cross_product is scheduler-major, so each
  // scheduler's seeds are the contiguous slice [s*seeds, (s+1)*seeds).
  const std::size_t n_seeds = opts.seeds.size();
  for (std::size_t s = 0; s < opts.schedulers.size(); ++s) {
    std::vector<exp::RunOutput> outs;
    for (std::size_t k = 0; k < n_seeds; ++k) {
      const auto& cell = results[s * n_seeds + k];
      if (!cell.failed) outs.push_back(cell.output);
    }
    const auto agg = exp::aggregate(outs);
    std::printf("%-12s hit rate %5.1f%%  mean cost $%.4f  mean wait %.1f ms  "
                "(%zu/%zu seeds)\n",
                std::string(exp::to_string(opts.schedulers[s])).c_str(),
                100.0 * agg.slo_hit_rate, agg.total_cost, agg.mean_job_wait_ms,
                outs.size(), n_seeds);
  }

  if (!opts.sweep_out.empty()) {
    std::FILE* file = std::fopen(opts.sweep_out.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "esg_sim: cannot open sweep-out file '%s'\n",
                   opts.sweep_out.c_str());
      return 1;
    }
    std::fprintf(file, "{\n  \"schema\": \"esg.sweep.v1\",\n  \"cells\": [");
    for (std::size_t i = 0; i < results.size(); ++i) {
      const auto& cell = results[i];
      const auto scheduler = exp::to_string(opts.schedulers[i / n_seeds]);
      std::fprintf(file, "%s\n    {\"scheduler\": \"%.*s\", \"seed\": %llu",
                   i == 0 ? "" : ",", static_cast<int>(scheduler.size()),
                   scheduler.data(),
                   static_cast<unsigned long long>(opts.seeds[i % n_seeds]));
      if (cell.failed) {
        std::fprintf(file, ", \"failed\": true}");
        continue;
      }
      const auto& m = cell.output.metrics;
      std::fprintf(file,
                   ", \"requests\": %zu, \"slo_hit_rate\": %.17g, "
                   "\"total_cost\": %.17g, \"cold_starts\": %zu, "
                   "\"mean_job_wait_ms\": %.17g, \"events_fired\": %llu}",
                   m.requests(), m.slo_hit_rate(), m.total_cost, m.cold_starts,
                   m.mean_job_wait_ms(),
                   static_cast<unsigned long long>(
                       cell.output.counters.events_fired));
    }
    std::fprintf(file, "\n  ],\n  \"aggregates\": [");
    for (std::size_t s = 0; s < opts.schedulers.size(); ++s) {
      std::vector<exp::RunOutput> outs;
      for (std::size_t k = 0; k < n_seeds; ++k) {
        const auto& cell = results[s * n_seeds + k];
        if (!cell.failed) outs.push_back(cell.output);
      }
      const auto agg = exp::aggregate(outs);
      const auto scheduler = exp::to_string(opts.schedulers[s]);
      std::fprintf(file,
                   "%s\n    {\"scheduler\": \"%.*s\", \"seeds\": %zu, "
                   "\"slo_hit_rate\": %.17g, \"total_cost\": %.17g, "
                   "\"mean_job_wait_ms\": %.17g}",
                   s == 0 ? "" : ",", static_cast<int>(scheduler.size()),
                   scheduler.data(), outs.size(), agg.slo_hit_rate,
                   agg.total_cost, agg.mean_job_wait_ms);
    }
    std::fprintf(file, "\n  ]\n}\n");
    std::fclose(file);
    std::printf("sweep results written to %s\n", opts.sweep_out.c_str());
  }
  return any_failed ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace esg;
  exp::CliOptions opts;
  try {
    opts = exp::parse_cli({const_cast<const char* const*>(argv) + 1,
                           static_cast<std::size_t>(argc - 1)});
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "esg_sim: %s\n%s", e.what(), exp::cli_usage().c_str());
    return 2;
  }
  if (opts.help) {
    std::printf("%s", exp::cli_usage().c_str());
    return 0;
  }
  if (opts.version) {
    std::printf("%s\n", common::version_line("esg_sim").c_str());
    return 0;
  }
  if (opts.build_info) {
    common::write_build_info(stdout, "esg_sim");
    return 0;
  }

  std::string arrivals(exp::to_string(opts.scenario.arrivals.mode));
  if (opts.scenario.arrivals.mode == exp::ArrivalMode::kTrace) {
    char scales[96];
    std::snprintf(scales, sizeof(scales), ":%s,rate-scale=%g,time-scale=%g",
                  opts.scenario.arrivals.trace_path.c_str(),
                  opts.scenario.arrivals.replay.rate_scale,
                  opts.scenario.arrivals.replay.time_scale);
    arrivals += scales;
  }
  // The elastic suffix only appears when --elastic was given, keeping static
  // stdout unchanged.
  std::string elastic_desc;
  if (opts.scenario.elastic.enabled()) {
    elastic_desc =
        " elastic=" + elastic::to_string(opts.scenario.elastic);
  }
  // Same suppression for --forecast: reactive stdout stays unchanged.
  if (opts.scenario.forecast.enabled()) {
    elastic_desc += " forecast=" + forecast::to_string(opts.scenario.forecast);
  }
  // Same suppression for --tenants: single-tenant stdout stays unchanged.
  // Resolve against the (eagerly loaded) trace so a trace-borne tenant
  // column shows up here too.
  const std::size_t trace_tenants =
      opts.scenario.arrivals.trace != nullptr
          ? opts.scenario.arrivals.trace->tenant_count
          : 1;
  const tenant::TenantSpec tenants =
      tenant::resolve_for_trace(opts.scenario.tenants, trace_tenants);
  if (!tenants.inert()) {
    elastic_desc += " tenants=" + tenant::to_string(tenants);
  }
  // Same suppression for --engine: default-engine stdout stays unchanged
  // (and the calendar/heap artefact cmp never trips on the header line).
  if (opts.scenario.engine != sim::EngineKind::kCalendar) {
    elastic_desc +=
        std::string(" engine=") + sim::engine_name(opts.scenario.engine);
  }
  // Sweep header lists every scheduler in the cross product. --jobs is
  // deliberately NOT printed: stdout must be byte-identical across worker
  // counts (CI cmp-asserts --jobs 4 against --jobs 1).
  std::string scheduler_desc(exp::to_string(opts.scenario.scheduler));
  if (opts.sweep) {
    scheduler_desc.clear();
    for (std::size_t s = 0; s < opts.schedulers.size(); ++s) {
      if (s != 0) scheduler_desc += ",";
      scheduler_desc += std::string(exp::to_string(opts.schedulers[s]));
    }
  }
  std::printf("scheduler=%s load=%s slo=%s arrivals=%s horizon=%.0fms "
              "warmup=%.0fms nodes=%zu seeds=%zu%s\n\n",
              scheduler_desc.c_str(),
              std::string(workload::to_string(opts.scenario.load)).c_str(),
              std::string(workload::to_string(opts.scenario.slo)).c_str(),
              arrivals.c_str(), opts.scenario.horizon_ms,
              opts.scenario.warmup_ms, opts.scenario.nodes, opts.seeds.size(),
              elastic_desc.c_str());

  if (opts.sweep) {
    try {
      return run_sweep_cli(opts);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "esg_sim: %s\n", e.what());
      return 1;
    }
  }

  // With tracing (or a perf summary) the seeds run sequentially, each into
  // its own file; the untraced path keeps the parallel replica runner.
  std::vector<exp::RunOutput> outputs;
  try {
  if (opts.scenario.trace.enabled() || opts.perf_summary) {
    const auto per_seed = [&](const std::string& path, std::uint64_t seed) {
      if (path.empty() || opts.seeds.size() == 1) return path;
      const auto dot = path.rfind('.');
      const std::string suffix = "_seed" + std::to_string(seed);
      if (dot == std::string::npos || dot == 0) return path + suffix;
      return path.substr(0, dot) + suffix + path.substr(dot);
    };
    for (const std::uint64_t seed : opts.seeds) {
      exp::Scenario scenario = opts.scenario;
      scenario.seed = seed;
      scenario.trace.trace_path = per_seed(scenario.trace.trace_path, seed);
      scenario.trace.stats_path = per_seed(scenario.trace.stats_path, seed);
      scenario.trace.report_path = per_seed(scenario.trace.report_path, seed);
      scenario.trace.perf_path = per_seed(scenario.trace.perf_path, seed);
      // Per-seed scope trees: run_scenario resets when --perf-out is set,
      // but a summary-only run must clear the previous seed's tree itself.
      if (opts.perf_summary) perf::Profiler::instance().reset();
      outputs.push_back(exp::run_scenario(scenario));
      if (!scenario.trace.trace_path.empty()) {
        std::printf("trace written to %s (open in ui.perfetto.dev)\n",
                    scenario.trace.trace_path.c_str());
      }
      if (!scenario.trace.stats_path.empty()) {
        std::printf("stats written to %s\n", scenario.trace.stats_path.c_str());
      }
      if (!scenario.trace.report_path.empty()) {
        std::printf("report written to %s (inspect with tools/esg_report)\n",
                    scenario.trace.report_path.c_str());
      }
      if (!scenario.trace.perf_path.empty()) {
        std::printf("perf report written to %s (compare with tools/esg_perfdiff)\n",
                    scenario.trace.perf_path.c_str());
      }
      if (opts.perf_summary) {
        const exp::RunOutput& out = outputs.back();
        perf::RunInfo info;
        info.scheduler = exp::to_string(scenario.scheduler);
        info.seed = seed;
        info.simulated_ms = out.simulated_end_ms;
        info.wall_seconds = out.wall_seconds;
        info.invocations = out.metrics.requests();
        perf::write_perf_summary(stdout, info, out.counters,
                                 perf::Profiler::instance().snapshot());
      }
    }
    std::printf("\n");
  } else {
    outputs = exp::run_replicas(opts.scenario, opts.seeds, opts.jobs);
  }
  } catch (const std::invalid_argument& e) {
    // Scenario validation that only runs inside run_scenario (fault/elastic
    // cross-checks) is still a configuration error, not a runtime failure.
    std::fprintf(stderr, "esg_sim: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "esg_sim: %s\n", e.what());
    return 1;
  }
  const auto agg = exp::aggregate(outputs);

  AsciiTable table({"seed", "requests", "SLO hit rate", "cost ($)",
                    "cold starts", "local/remote", "mean wait (ms)"});
  for (std::size_t i = 0; i < outputs.size(); ++i) {
    const auto& m = outputs[i].metrics;
    table.add_row({std::to_string(opts.seeds[i]), std::to_string(m.requests()),
                   AsciiTable::pct(m.slo_hit_rate()),
                   AsciiTable::num(m.total_cost, 4),
                   std::to_string(m.cold_starts),
                   std::to_string(m.local_inputs) + "/" +
                       std::to_string(m.remote_inputs),
                   AsciiTable::num(m.mean_job_wait_ms(), 1)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("aggregate: hit rate %.1f%%, mean cost $%.4f over %zu seed(s)\n",
              100.0 * agg.slo_hit_rate, agg.total_cost, opts.seeds.size());

  // Fault-injection rollup. All-zero counters mean no fault ever fired, so
  // the line is suppressed — keeps fault-free stdout byte-identical to runs
  // without --fault-spec.
  std::size_t failures = 0, timeouts = 0, retries = 0, exhausted = 0,
              cold_fails = 0, crashes = 0;
  for (const auto& out : outputs) {
    failures += out.metrics.task_failures;
    timeouts += out.metrics.task_timeouts;
    retries += out.metrics.retries;
    exhausted += out.metrics.retries_exhausted;
    cold_fails += out.metrics.cold_start_failures;
    crashes += out.metrics.invoker_crashes;
  }
  if (failures + timeouts + retries + exhausted + cold_fails + crashes > 0) {
    std::printf("faults: %zu task failures (%zu timeouts), %zu retries, "
                "%zu aborted, %zu cold-start failures, %zu invoker crashes\n",
                failures, timeouts, retries, exhausted, cold_fails, crashes);
  }

  // Elasticity rollup, suppressed the same way: a static (or zero-churn
  // elastic) run prints nothing extra.
  std::size_t sheds = 0, reclaims = 0, scale_outs = 0, scale_ins = 0;
  for (const auto& out : outputs) {
    sheds += out.metrics.shed_requests;
    reclaims += out.metrics.spot_reclaims;
    scale_outs += out.metrics.scale_outs;
    scale_ins += out.metrics.scale_ins;
  }
  if (sheds + reclaims + scale_outs + scale_ins > 0) {
    std::printf("elasticity: %zu scale-outs, %zu scale-ins, %zu spot "
                "reclamations, %zu shed requests\n",
                scale_outs, scale_ins, reclaims, sheds);
  }

  // Forecast-accuracy rollup, printed only when a forecaster ran (reactive
  // stdout is byte-identical to pre-forecast builds). Averages the per-app
  // MAE/sMAPE over apps with at least one closed bin, across all seeds.
  if (opts.scenario.forecast.enabled()) {
    double mae_sum = 0.0, smape_sum = 0.0;
    std::size_t scored = 0, bins = 0;
    for (const auto& out : outputs) {
      for (const auto& acc : out.forecast_accuracy) {
        if (acc.bins == 0) continue;
        mae_sum += acc.mae;
        smape_sum += acc.smape;
        bins += acc.bins;
        ++scored;
      }
    }
    if (scored > 0) {
      std::printf("forecast: %zu scored app-series over %zu bins, "
                  "mean MAE %.3f req/bin, mean sMAPE %.3f\n",
                  scored, bins, mae_sum / static_cast<double>(scored),
                  smape_sum / static_cast<double>(scored));
    } else {
      std::printf("forecast: no bins closed (run shorter than bin-ms?)\n");
    }
  }

  // Per-tenant fairness rollup across all seeds, printed only on
  // multi-tenant runs (single-tenant stdout is byte-identical to pre-tenant
  // builds).
  if (!tenants.inert()) {
    for (std::uint32_t t = 0;
         t < static_cast<std::uint32_t>(tenants.tenants.size()); ++t) {
      std::size_t requests = 0, hits = 0;
      std::vector<double> latencies;
      for (const auto& out : outputs) {
        for (const auto& c : out.metrics.completions) {
          if (c.tenant != t) continue;
          ++requests;
          if (c.hit) ++hits;
          if (!c.shed) latencies.push_back(c.latency_ms);
        }
      }
      const double rate =
          requests > 0
              ? 100.0 * static_cast<double>(hits) / static_cast<double>(requests)
              : 0.0;
      std::printf("tenant %-12s weight=%-4.4g requests=%-6zu "
                  "hit rate %5.1f%%  p99 %.1f ms\n",
                  tenants.tenant_name(t).c_str(), tenants.weight_of(t),
                  requests, rate, percentile(latencies, 0.99));
    }
  }

  if (!opts.csv_dir.empty()) {
    namespace fs = std::filesystem;
    fs::create_directories(opts.csv_dir);
    for (std::size_t i = 0; i < outputs.size(); ++i) {
      const std::string stem =
          opts.csv_dir + "/seed" + std::to_string(opts.seeds[i]);
      std::ofstream completions(stem + "_completions.csv");
      metrics::write_completions_csv(outputs[i].metrics, completions);
      std::ofstream tasks(stem + "_tasks.csv");
      metrics::write_task_trace_csv(outputs[i].metrics, tasks);
    }
    std::ofstream summary(opts.csv_dir + "/summary.csv");
    std::ofstream per_app(opts.csv_dir + "/per_app.csv");
    for (std::size_t i = 0; i < outputs.size(); ++i) {
      metrics::write_summary_csv(outputs[i].metrics,
                                 "seed" + std::to_string(opts.seeds[i]), summary,
                                 i == 0);
      metrics::write_per_app_summary_csv(
          outputs[i].metrics, "seed" + std::to_string(opts.seeds[i]), per_app,
          i == 0);
    }
    // per_tenant.csv exists only on multi-tenant runs, so single-tenant
    // --csv-dir output keeps the exact legacy file set.
    if (!tenants.inert()) {
      std::vector<std::string> names;
      for (std::uint32_t t = 0;
           t < static_cast<std::uint32_t>(tenants.tenants.size()); ++t) {
        names.push_back(tenants.tenant_name(t));
      }
      std::ofstream per_tenant(opts.csv_dir + "/per_tenant.csv");
      for (std::size_t i = 0; i < outputs.size(); ++i) {
        metrics::write_per_tenant_summary_csv(
            outputs[i].metrics, names,
            "seed" + std::to_string(opts.seeds[i]), per_tenant, i == 0);
      }
    }
    std::printf("CSVs written to %s/\n", opts.csv_dir.c_str());
  }
  return 0;
}
