// esg_tracegen — generates a synthetic Azure-shaped workload trace
// (esg.trace.v1): diurnal sinusoid intensity, Zipf app popularity, and
// multiplicative burst episodes, Poisson-sampled to integer counts.
// Deterministic for a given --seed, so CI and benches can regenerate
// identical traces instead of checking in large files.
#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>

#include "common/build_info.hpp"
#include "common/rng.hpp"
#include "trace/azure_shape.hpp"
#include "trace/workload_trace.hpp"

namespace {

struct Options {
  esg::trace::AzureShapeOptions shape;
  std::uint64_t seed = 42;
  std::string format = "csv";  // csv|jsonl
  std::string out;             // empty = stdout
  bool help = false;
  bool version = false;
  bool build_info = false;
};

const char* kUsage =
    R"(esg_tracegen — generate a synthetic Azure-shaped workload trace (esg.trace.v1)

usage: esg_tracegen [flags]

  --apps        <n>     applications in the trace          (default 4)
  --bins        <n>     bins per day                       (default 120)
  --days        <n>     days to repeat the diurnal pattern
                        over (fresh burst draws each day;
                        trace length = bins*days)          (default 1)
  --bin-ms      <ms>    bin width                          (default 1000)
  --mean-rate   <f>     mean invocations per bin, all apps (default 60)
  --diurnal-amplitude <f>  sinusoid depth in [0,1)         (default 0.6)
  --diurnal-period <bins>  bins per cycle, 0 = whole trace (default 0)
  --zipf-s      <f>     app-popularity skew                (default 1.1)
  --bursts      <n>     burst episodes                     (default 3)
  --burst-factor <f>    intensity multiplier in a burst    (default 4)
  --burst-fraction <f>  mean episode length / trace length (default 0.05)
  --fractional  on|off  store expected counts instead of
                        Poisson-sampled integers           (default off)
  --tenants     <n>     tenants sharing the trace; >= 2 emits
                        the tenant column                  (default 1)
  --tenant-zipf <f>     tenant-popularity skew (0=uniform) (default 1)
  --seed        <n>     RNG seed                           (default 42)
  --format      csv|jsonl                                  (default csv)
  --out         <path>  output file (default: stdout)
  --version             print one provenance line (commit, compiler, build)
  --build-info          print the full build/host provenance record
  --help

exit codes: 0 success; 2 configuration error (bad flag or shape options);
1 runtime failure (unwritable output, internal error).
)";

double parse_number(std::string_view key, std::string_view v) {
  double out = 0.0;
  const auto* end = v.data() + v.size();
  const auto [ptr, ec] = std::from_chars(v.data(), end, out);
  if (ec != std::errc{} || ptr != end || !std::isfinite(out)) {
    throw std::invalid_argument("malformed value for " + std::string(key) +
                                ": '" + std::string(v) + "'");
  }
  return out;
}

std::size_t parse_count(std::string_view key, std::string_view v) {
  const double d = parse_number(key, v);
  if (d < 0.0 || d != std::floor(d)) {
    throw std::invalid_argument(std::string(key) +
                                " must be a non-negative integer");
  }
  return static_cast<std::size_t>(d);
}

bool parse_bool(std::string_view key, std::string_view v) {
  if (v == "on" || v == "true" || v == "1") return true;
  if (v == "off" || v == "false" || v == "0") return false;
  throw std::invalid_argument("malformed boolean for " + std::string(key) +
                              ": '" + std::string(v) + "' (on|off)");
}

Options parse_args(std::span<const char* const> args) {
  Options opts;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string_view key = args[i];
    if (key == "--help" || key == "-h") {
      opts.help = true;
      return opts;
    }
    if (key == "--version") {
      opts.version = true;
      return opts;
    }
    if (key == "--build-info") {
      opts.build_info = true;
      return opts;
    }
    if (i + 1 >= args.size()) {
      throw std::invalid_argument("missing value for " + std::string(key));
    }
    const std::string_view value = args[++i];
    if (key == "--apps") {
      opts.shape.apps = parse_count(key, value);
    } else if (key == "--bins") {
      opts.shape.bins = parse_count(key, value);
    } else if (key == "--days") {
      opts.shape.days = parse_count(key, value);
      if (opts.shape.days < 1) {
        throw std::invalid_argument("--days must be >= 1");
      }
    } else if (key == "--bin-ms") {
      opts.shape.bin_ms = parse_number(key, value);
    } else if (key == "--mean-rate") {
      opts.shape.mean_rate_per_bin = parse_number(key, value);
    } else if (key == "--diurnal-amplitude") {
      opts.shape.diurnal_amplitude = parse_number(key, value);
    } else if (key == "--diurnal-period") {
      opts.shape.diurnal_period_bins = parse_number(key, value);
    } else if (key == "--zipf-s") {
      opts.shape.zipf_s = parse_number(key, value);
    } else if (key == "--bursts") {
      opts.shape.burst_count = parse_count(key, value);
    } else if (key == "--burst-factor") {
      opts.shape.burst_factor = parse_number(key, value);
    } else if (key == "--burst-fraction") {
      opts.shape.burst_fraction = parse_number(key, value);
    } else if (key == "--fractional") {
      opts.shape.integer_counts = !parse_bool(key, value);
    } else if (key == "--tenants") {
      opts.shape.tenants = parse_count(key, value);
      if (opts.shape.tenants < 1) {
        throw std::invalid_argument("--tenants must be >= 1");
      }
    } else if (key == "--tenant-zipf") {
      opts.shape.tenant_zipf_s = parse_number(key, value);
    } else if (key == "--seed") {
      opts.seed = static_cast<std::uint64_t>(parse_count(key, value));
    } else if (key == "--format") {
      opts.format = std::string(value);
      if (opts.format != "csv" && opts.format != "jsonl") {
        throw std::invalid_argument("unknown --format '" + opts.format +
                                    "' (csv|jsonl)");
      }
    } else if (key == "--out") {
      opts.out = std::string(value);
    } else {
      throw std::invalid_argument("unknown flag '" + std::string(key) +
                                  "' (see --help)");
    }
  }
  return opts;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace esg;
  Options opts;
  try {
    opts = parse_args({const_cast<const char* const*>(argv) + 1,
                       static_cast<std::size_t>(argc - 1)});
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "esg_tracegen: %s\n%s", e.what(), kUsage);
    return 2;
  }
  if (opts.help) {
    std::printf("%s", kUsage);
    return 0;
  }
  if (opts.version) {
    std::printf("%s\n", common::version_line("esg_tracegen").c_str());
    return 0;
  }
  if (opts.build_info) {
    common::write_build_info(stdout, "esg_tracegen");
    return 0;
  }

  try {
    const trace::WorkloadTrace generated = trace::generate_azure_shaped(
        opts.shape, RngFactory(opts.seed).stream("azure-shape"));

    std::ofstream file;
    if (!opts.out.empty()) {
      file.open(opts.out);
      if (!file) {
        std::fprintf(stderr, "esg_tracegen: cannot open '%s'\n",
                     opts.out.c_str());
        return 1;
      }
    }
    std::ostream& out = opts.out.empty() ? std::cout : file;
    if (opts.format == "jsonl") {
      trace::write_trace_jsonl(generated, out);
    } else {
      trace::write_trace_csv(generated, out);
    }
    if (!opts.out.empty()) {
      std::fprintf(stderr,
                   "wrote %zu bins x %zu apps (%.0f invocations, %.1f s) to %s\n",
                   generated.bin_count(), generated.app_count,
                   generated.total_count(), generated.duration_ms() / 1000.0,
                   opts.out.c_str());
    }
  } catch (const std::invalid_argument& e) {
    // Shape-option validation happens inside the generator, so a bad knob
    // combination surfaces here; it is still a configuration error.
    std::fprintf(stderr, "esg_tracegen: %s\n%s", e.what(), kUsage);
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "esg_tracegen: %s\n", e.what());
    return 1;
  }
  return 0;
}
